/**
 * @file
 * Declarative experiment specification: everything one run of the
 * simulator needs — machine, service mix, load patterns, manager +
 * knobs, schedule, seeds, mid-run events, topology — as a plain value
 * type with a JSON round-trip. One ScenarioSpec describes a run on
 * either topology (a single sim::Server or an N-node fleet); the
 * scenario Engine (harness/engine.hh) executes it, and the scenarios/
 * directory ships one JSON file per paper figure.
 *
 * Events partition a run into segments: each event first runs the
 * preceding segment for `afterSteps` control intervals, then fires —
 * optionally transferring the Twig manager to new services (the
 * fig. 8/9 transfer-learning swap) and/or starting a fresh server with
 * a new service mix / load / seed (the fig. 11 load change). Metrics,
 * traces and sinks cover the final segment only, the way the paper
 * summarises runs over a trailing window.
 */

#ifndef TWIG_HARNESS_SCENARIO_HH
#define TWIG_HARNESS_SCENARIO_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "autoscale/autoscaler.hh"
#include "autoscale/node_class.hh"
#include "common/json.hh"
#include "faults/fault_spec.hh"
#include "harness/registry.hh"

namespace twig::harness {

/** One hosted service and the load pattern driving it. */
struct ServiceLoadSpec
{
    /** Catalogue name (services::byName). */
    std::string service;
    /** fixed | diurnal | step | ramp | trace. */
    std::string pattern = "fixed";
    /** Operating ("high") load fraction of the effective max. */
    double fraction = 0.5;
    /** Scales the profile's max RPS (e.g. a colocated max fraction). */
    double maxScale = 1.0;
    /** Absolute peak RPS override; > 0 wins over maxScale and skips
     * the fleet capacity scaling on the cluster topology. */
    double maxRps = 0.0;
    /** Low fraction for diurnal/step/ramp/trace; < 0 picks the
     * pattern's conventional default (0.4 x fraction for diurnal and
     * trace, max(0.1, 0.4 x fraction) for step, 0.25 x fraction for
     * ramp). */
    double lowFraction = -1.0;
    /** Pattern period in steps; 0 picks the conventional default
     * (steps/4 diurnal, max(steps/50, 1) step, the segment length for
     * ramp and trace). */
    std::size_t periodSteps = 0;
    /** Multiplicative increment of the step pattern. */
    double changeFactor = 0.2;
    /** CSV file + column replayed by the trace pattern. */
    std::string tracePath;
    std::string traceColumn;

    common::Json toJson() const;
    static ServiceLoadSpec fromJson(const common::Json &j);
};

/** Transfer-learning swap applied to a TwigManager (paper §IV). */
struct TransferSpec
{
    /** Managed-service slot whose spec is swapped. */
    std::size_t serviceIndex = 0;
    /** Catalogue name of the incoming service. */
    std::string service;
    /** Seed of the incoming service's Eq. 2 profiling fit. */
    std::uint64_t specSeed = 0;
    /** Epsilon re-annealing window after the swap. */
    std::size_t reexploreSteps = 50;

    common::Json toJson() const;
    static TransferSpec fromJson(const common::Json &j);
};

/** A mid-run event; see the file comment for segment semantics. */
struct ScenarioEvent
{
    /** Steps the segment before this event runs (its own server; no
     * metrics). */
    std::size_t afterSteps = 0;
    /** Manager-side transfers fired at the boundary (twig only). */
    std::vector<TransferSpec> transfers;
    /** New service mix for the next segment; empty keeps the previous
     * mix (the next segment still starts on a fresh server). */
    std::vector<ServiceLoadSpec> services;
    /** Seed of the next segment's server (default: the scenario
     * seed). */
    std::optional<std::uint64_t> serverSeed;

    common::Json toJson() const;
    static ScenarioEvent fromJson(const common::Json &j);
};

/** A complete declarative experiment. */
struct ScenarioSpec
{
    std::string name;
    std::string description;

    /** single | cluster. */
    std::string topology = "single";

    /** Cores of the (reference) node; hetero fleets cut odd nodes to
     * 6 cores like the scale-out experiments. */
    std::size_t machineCores = 18;

    /** Initial service mix (segment 0). */
    std::vector<ServiceLoadSpec> services;

    std::string manager = "twig";
    ManagerKnobs knobs;
    /** Paper-length time constants (TwigConfig::paper etc.). */
    bool paper = false;
    /** Manager seed (default: seed + 1, the tools' convention). */
    std::optional<std::uint64_t> managerSeed;

    /** Steps of the final (measured) segment. */
    std::size_t steps = 2000;
    /** Trailing metrics window; 0 = steps/6 on the single topology,
     * steps/4 (clamped to steps) on the cluster. */
    std::size_t window = 0;
    /** Learning-schedule horizon; 0 = steps. */
    std::size_t horizon = 0;

    /** Server seed (single) / fleet base seed (cluster). */
    std::uint64_t seed = 42;

    std::vector<ScenarioEvent> events;

    // --- cluster topology only ---------------------------------------
    std::size_t nodes = 4;
    /** Alternate full-size and 6-core nodes. */
    bool hetero = false;
    /** static | wrr | p2c-latency. */
    std::string policy = "p2c-latency";
    /** Routing domains of the two-level front-end; 1 = flat-equivalent
     * single domain (must not exceed the node count). */
    std::size_t domains = 1;
    /** Warm-start BDQ checkpoint for every node; "{cores}" expands to
     * the node's core count (per-shape donors). Implies exploit-only
     * twig nodes. */
    std::string checkpoint;
    /** Fault schedule the run must survive (src/faults); empty = no
     * faults and a step loop byte-identical to a fault-free run. */
    faults::FaultSpec faults;
    /** User-defined node capability classes, referenced by id from
     * `fleet` (the built-in catalogue is always available and may not
     * be shadowed). */
    std::vector<autoscale::NodeClass> nodeClasses;
    /** Per-slot class ids: slot n is provisioned as
     * fleet[n % fleet.size()]. Empty = homogeneous reference nodes
     * (or hetero's 18/6 alternation). */
    std::vector<std::string> fleetClasses;
    /** Elastic sizing block (src/autoscale). When present `nodes` is
     * the *initial* active count and the fleet provisions
     * autoscale->maxNodes slots (the rest start in standby). */
    std::optional<autoscale::AutoscaleConfig> autoscale;

    /** Provisioned fleet slots: autoscale->maxNodes with an autoscale
     * block, `nodes` without. */
    std::size_t totalNodes() const
    {
        return autoscale ? autoscale->maxNodes : nodes;
    }

    /** Effective metrics window / learning horizon. */
    std::size_t resolvedWindow() const;
    std::size_t resolvedHorizon() const { return horizon ? horizon : steps; }

    /** The service mix of the final (measured) segment. */
    const std::vector<ServiceLoadSpec> &finalServices() const;

    /**
     * Structural validation against @p registry: topology, manager
     * name + single-service rule, patterns, events. Returns an error
     * message or the empty string. Service names are checked by the
     * engine (services::byName) to keep this layer catalogue-free.
     */
    std::string validate(const ManagerRegistry &registry) const;

    common::Json toJson() const;
    static ScenarioSpec fromJson(const common::Json &j);
    /** Parse a scenario file (fatal on malformed input). */
    static ScenarioSpec fromFile(const std::string &path);
};

} // namespace twig::harness

#endif // TWIG_HARNESS_SCENARIO_HH
