/**
 * @file
 * Offline profiling helpers:
 *
 *  * profileServicePower — the paper's Eq. 2 profiling campaign: run
 *    the service at three load levels across alternate core counts and
 *    DVFS states and record the measured dynamic power per
 *    configuration (paper §IV "Power Model/Measurements");
 *  * makeTwigSpec — package a service profile into the spec Twig needs
 *    (QoS target, max load, fitted power model);
 *  * makeBaselineSpec — the slimmer spec the baselines need.
 */

#ifndef TWIG_HARNESS_PROFILING_HH
#define TWIG_HARNESS_PROFILING_HH

#include <cstdint>
#include <vector>

#include "baselines/static_manager.hh"
#include "core/power_model.hh"
#include "core/twig_manager.hh"
#include "sim/machine.hh"
#include "sim/service_profile.hh"

namespace twig::harness {

/** Options of the power profiling campaign (paper defaults). */
struct PowerProfilingOptions
{
    /** Load levels as fractions of max load (paper: 20/50/80 %). */
    std::vector<double> loadLevels = {0.2, 0.5, 0.8};
    /** Core counts: "alternate number of cores". */
    std::vector<std::size_t> coreCounts = {2, 4, 6, 8, 10, 12, 14, 16, 18};
    /** DVFS indices: "alternate DVFS states". */
    std::vector<std::size_t> dvfsStates = {0, 2, 4, 6, 8};
    /** Intervals measured per configuration. */
    std::size_t intervalsPerConfig = 4;
};

/** Run the profiling campaign for one service on a private server. */
std::vector<core::PowerSample>
profileServicePower(const sim::ServiceProfile &profile,
                    const sim::MachineConfig &machine,
                    const PowerProfilingOptions &options,
                    std::uint64_t seed);

/**
 * Build the TwigServiceSpec for @p profile: fits the Eq. 2 power model
 * with the paper's random-grid-search + 5-fold-CV procedure over a
 * fresh profiling campaign.
 */
core::TwigServiceSpec makeTwigSpec(const sim::ServiceProfile &profile,
                                   const sim::MachineConfig &machine,
                                   std::uint64_t seed);

/** Spec for the baseline managers. */
baselines::BaselineServiceSpec
makeBaselineSpec(const sim::ServiceProfile &profile);

} // namespace twig::harness

#endif // TWIG_HARNESS_PROFILING_HH
