/**
 * @file
 * Scenario engine: executes a ScenarioSpec on either topology —
 * a single sim::Server driven through ExperimentRunner, or an N-node
 * cluster::ClusterManager fleet — building the manager through the
 * ManagerRegistry and emitting per-step records through composable
 * RecordSinks (CSV trace, recomputed metrics, simulator cycle
 * profile). Every tool and comparison bench funnels through here, so
 * a scenario file, a CLI invocation and a bench cell are the same run.
 */

#ifndef TWIG_HARNESS_ENGINE_HH
#define TWIG_HARNESS_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_manager.hh"
#include "common/csv.hh"
#include "harness/metrics.hh"
#include "harness/registry.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"

namespace twig::harness {

/** One per-step record, topology-independent. */
struct StepRecord
{
    std::size_t step = 0;
    /** Socket power (single) / summed fleet power (cluster), W. */
    double powerW = 0.0;
    std::vector<double> offeredRps;
    std::vector<double> p99Ms;
    /** Requested cores / DVFS indices; empty on the cluster topology
     * (resource decisions are per-node there). */
    std::vector<std::size_t> cores;
    std::vector<std::size_t> dvfs;
};

/** Observer of the final (measured) segment's per-step records. */
class RecordSink
{
  public:
    virtual ~RecordSink() = default;

    /** Called once before the run, with the final segment's service
     * profiles. */
    virtual void
    begin(const ScenarioSpec &spec,
          const std::vector<sim::ServiceProfile> &profiles)
    {
        (void)spec;
        (void)profiles;
    }

    virtual void record(const StepRecord &rec) = 0;

    /** Called for every fault event of a step, before that step's
     * record() (cluster topology with a fault schedule only). */
    virtual void fault(const faults::FaultEvent &ev) { (void)ev; }

    /** Called once after the last record. */
    virtual void end() {}
};

/** CSV trace writer: the twig_sim per-step layout on the single
 * topology (cores/DVFS/p99/RPS per service), the twig_cluster fleet
 * layout (RPS/p99 per service) on the cluster. */
class CsvTraceSink : public RecordSink
{
  public:
    explicit CsvTraceSink(std::string path) : path_(std::move(path)) {}

    void begin(const ScenarioSpec &spec,
               const std::vector<sim::ServiceProfile> &profiles) override;
    void record(const StepRecord &rec) override;

    const std::string &path() const { return path_; }
    /** Rows written so far. */
    std::size_t records() const { return records_; }

  private:
    std::string path_;
    std::unique_ptr<common::CsvWriter> csv_;
    bool singleTopology_ = true;
    std::size_t numServices_ = 0;
    std::size_t records_ = 0;
    std::vector<double> row_;
};

/** Writes the fault-event stream as CSV (tools' --fault-trace): one
 * row per event with the kind name and the kind-specific scalars. */
class FaultCsvSink : public RecordSink
{
  public:
    explicit FaultCsvSink(std::string path) : path_(std::move(path)) {}

    void begin(const ScenarioSpec &spec,
               const std::vector<sim::ServiceProfile> &profiles) override;
    void record(const StepRecord &rec) override { (void)rec; }
    void fault(const faults::FaultEvent &ev) override;
    /** Close the file so the event stream is complete on disk. */
    void end() override { csv_.reset(); }

    const std::string &path() const { return path_; }
    /** Events written so far. */
    std::size_t events() const { return events_; }

  private:
    std::string path_;
    std::unique_ptr<common::CsvWriter> csv_;
    std::size_t events_ = 0;
};

/** Recomputes RunMetrics from the record stream over the trailing
 * window — a cross-check of the runner's internal accumulator and the
 * metrics surface for fleet runs. */
class MetricsSink : public RecordSink
{
  public:
    void begin(const ScenarioSpec &spec,
               const std::vector<sim::ServiceProfile> &profiles) override;
    void record(const StepRecord &rec) override;
    void end() override;

    /** Valid after end(). */
    const RunMetrics &metrics() const { return metrics_; }

  private:
    std::unique_ptr<MetricsAccumulator> acc_;
    std::size_t windowStart_ = 0;
    double intervalSeconds_ = 1.0;
    RunMetrics metrics_;
};

/** Wraps the run in the per-phase simulator cycle counters and prints
 * the breakdown — cycles, calls and percentage share per phase — at
 * end() (tools' --sim-profile). A share budget (--profile-max-share)
 * additionally flags every phase whose share exceeds it, so a CI run
 * can assert "no phase above N%" instead of eyeballing the table. */
class SimProfileSink : public RecordSink
{
  public:
    /** @param max_share_pct  flag phases above this share of total
     *  cycles; the default never flags. */
    explicit SimProfileSink(double max_share_pct = 100.0)
        : maxSharePct_(max_share_pct)
    {
    }

    void begin(const ScenarioSpec &spec,
               const std::vector<sim::ServiceProfile> &profiles) override;
    void record(const StepRecord &rec) override { (void)rec; }
    void end() override;

    /** Whether end() found a phase above the share budget. */
    bool exceeded() const { return exceeded_; }

  private:
    double maxSharePct_;
    bool exceeded_ = false;
    std::size_t steps_ = 0;
};

/** Engine execution options (runtime concerns that are not part of
 * the experiment's identity, so they live outside the spec). */
struct EngineOptions
{
    /** Node-stepping threads on the cluster topology (bit-identical
     * at any value). */
    std::size_t jobs = 1;
    /** Keep the single-topology per-step trace in the result. */
    bool recordTrace = false;
    /** Observers of the final segment (not owned). */
    std::vector<RecordSink *> sinks;
    /** Run this manager instead of building one from the spec
     * (single topology only; for pre-built or ablated managers). */
    core::TaskManager *managerOverride = nullptr;
    /** Cluster: write node 0's trained BDQ checkpoint here after the
     * run (the manager must be a TwigManager). */
    std::string saveCheckpoint;
    /** Manager registry (default: ManagerRegistry::builtin()). */
    const ManagerRegistry *registry = nullptr;
};

/** A fleet built from a cluster-topology spec, plus the derived
 * pieces a live driver needs (see buildFleet). */
struct FleetSetup
{
    std::vector<sim::ServiceProfile> profiles;
    /** Effective fleet-wide peak RPS per service (absolute max_rps
     * override, or profile max x maxScale x fleet capacity). */
    std::vector<double> maxRps;
    std::unique_ptr<cluster::ClusterManager> fleet;
};

/** Effective fleet-wide peak RPS per service of a cluster-topology
 * spec (the same capacity scaling buildFleet applies) — what a live
 * front-end clamps observed arrival rates to. */
std::vector<double> fleetMaxRps(const ScenarioSpec &spec);

/**
 * Build the fleet a cluster-topology spec describes: nodes, managers
 * (warm-started from the spec's checkpoint when set), router policy
 * and fault schedule — everything except running it. When
 * @p loads_override is non-empty it supplies the fleet load
 * generators (one per service, same order) instead of the spec's
 * declarative patterns; this is how twig_serve plugs live socket
 * arrivals in as just another load source (serve::LiveLoad) while the
 * batch path stays byte-identical. The spec must already validate
 * against @p registry, and @p registry must outlive the fleet (node
 * rebuilds after faults go back through it).
 */
FleetSetup
buildFleet(const ScenarioSpec &spec, const ManagerRegistry &registry,
           std::size_t jobs,
           std::vector<std::unique_ptr<sim::LoadGenerator>>
               loads_override = {});

/** Result of one scenario run. */
struct EngineResult
{
    bool cluster = false;
    /** TaskManager::name() of the manager that ran (single only). */
    std::string managerName;
    /** Single topology: final-segment metrics (+ trace when
     * EngineOptions::recordTrace). */
    RunResult single;
    /** Cluster topology: fleet metrics + always-on fleet trace. */
    cluster::FleetRunResult fleet;

    /** Topology-independent view of the headline numbers. */
    double meanPowerW() const;
    double energyJoules() const;
    std::size_t windowSteps() const;
    double avgQosGuaranteePct() const;
};

/** Executes ScenarioSpecs. */
class Engine
{
  public:
    explicit Engine(EngineOptions options = {})
        : options_(std::move(options))
    {
    }

    /** Run @p spec (fatal on a spec that fails validate()). */
    EngineResult run(const ScenarioSpec &spec) const;

  private:
    EngineResult runSingle(const ScenarioSpec &spec,
                           const ManagerRegistry &registry) const;
    EngineResult runCluster(const ScenarioSpec &spec,
                            const ManagerRegistry &registry) const;

    EngineOptions options_;
};

} // namespace twig::harness

#endif // TWIG_HARNESS_ENGINE_HH
