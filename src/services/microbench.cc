#include "services/microbench.hh"

#include <algorithm>

#include "common/rng.hh"

namespace twig::services {

sim::ServiceProfile
cpuMaxMicrobench()
{
    sim::ServiceProfile p;
    p.name = "ubench-cpu-max";
    p.baseServiceTimeMs = 1.0;
    p.serviceTimeCv = 0.05;
    p.freqExponent = 1.0;
    p.memTrafficPerReqMB = 0.0;
    p.llcFootprintMB = 0.1;
    p.instructionsPerReqM = 7.6; // IPC ~3.8: wide issue, no stalls
    p.uopsPerInstr = 1.5;        // fused-multiply heavy
    p.branchFraction = 0.05;
    p.branchMissRate = 0.001;
    p.l1dPerInstr = 0.05;
    p.l1iPerInstr = 0.02;
    p.llcAccessPerInstr = 0.0001;
    p.llcBaseMissRate = 0.01;
    return p;
}

sim::ServiceProfile
branchyMicrobench()
{
    sim::ServiceProfile p;
    p.name = "ubench-branchy";
    p.baseServiceTimeMs = 1.0;
    p.serviceTimeCv = 0.05;
    p.freqExponent = 1.0;
    p.memTrafficPerReqMB = 0.05;
    p.llcFootprintMB = 1.0;
    p.instructionsPerReqM = 2.4; // IPC ~1.2: mispredicts flush pipeline
    p.uopsPerInstr = 1.1;
    p.branchFraction = 0.40;     // aggregation loop: compare + branch
    p.branchMissRate = 0.22;     // unsorted data: near-random outcomes
    p.l1dPerInstr = 0.62; // every compare loads from the vector
    p.l1iPerInstr = 0.12; // tight compare loop refetches hot code
    p.llcAccessPerInstr = 0.002;
    p.llcBaseMissRate = 0.2;
    return p;
}

sim::ServiceProfile
streamMicrobench()
{
    sim::ServiceProfile p;
    p.name = "ubench-stream";
    p.baseServiceTimeMs = 1.0;
    p.serviceTimeCv = 0.05;
    p.freqExponent = 0.3;        // bandwidth bound, not clock bound
    p.memTrafficPerReqMB = 50.0;
    p.llcFootprintMB = 100.0;    // streams straight through the LLC
    p.instructionsPerReqM = 1.0; // IPC ~0.5: stalled on memory
    p.uopsPerInstr = 1.05;
    p.branchFraction = 0.06;
    p.branchMissRate = 0.002;
    p.l1dPerInstr = 0.60;
    p.l1iPerInstr = 0.01;
    p.llcAccessPerInstr = 0.50;  // every element misses L1/L2
    p.llcBaseMissRate = 0.95;
    return p;
}

sim::PmcVector
calibrateCounterMaxima(const sim::MachineConfig &machine)
{
    // One interval, all cores fully busy at the highest DVFS state.
    common::Rng rng(0); // noiseless path is used; rng unused by it
    const sim::PmcModel model_probe(machine, rng);

    sim::PmcVector maxima{};
    for (const auto &profile :
         {cpuMaxMicrobench(), branchyMicrobench(), streamMicrobench()}) {
        sim::IntervalExecution exec;
        exec.busyCoreSeconds =
            static_cast<double>(machine.numCores) *
            machine.intervalSeconds;
        exec.freqGhz = machine.dvfs.maxGhz;
        exec.llcMissFactor = 1.0;
        // Enough requests to keep every core busy for the interval:
        // completed = busy cycles * IPC / instructions-per-request,
        // where IPC is implied by the profile's service time.
        const double cycles = exec.busyCoreSeconds * exec.freqGhz * 1e9;
        const double cycles_per_req =
            profile.baseServiceTimeMs * 1e-3 * exec.freqGhz * 1e9;
        exec.completedRequests =
            static_cast<std::size_t>(cycles / cycles_per_req);

        const sim::PmcVector v =
            model_probe.synthesizeNoiseless(profile, exec);
        for (std::size_t i = 0; i < sim::kNumPmcs; ++i)
            maxima[i] = std::max(maxima[i], v[i]);
    }
    return maxima;
}

} // namespace twig::services
