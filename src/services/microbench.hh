/**
 * @file
 * Calibration microbenchmarks (paper §IV "PMCs Measurement and
 * Selection"): the maximum value of each counter — used for max-value
 * feature scaling — is obtained by running three extreme workloads on
 * the whole socket at the highest DVFS state:
 *
 *  * cpu-max:  pure arithmetic, no memory accesses (counters 1-5,
 *              also defines the "maximum system power consumption"
 *              used by the power reward);
 *  * branchy:  aggregates an unsorted vector with data-dependent
 *              branches (counters 6-8);
 *  * stream:   McCalpin STREAM-like bandwidth workload (counters 9-11).
 */

#ifndef TWIG_SERVICES_MICROBENCH_HH
#define TWIG_SERVICES_MICROBENCH_HH

#include "sim/machine.hh"
#include "sim/pmc.hh"
#include "sim/service_profile.hh"

namespace twig::services {

/** CPU-intensive microbenchmark, no memory accesses. */
sim::ServiceProfile cpuMaxMicrobench();

/** Branch-miss generator (unsorted-vector aggregation). */
sim::ServiceProfile branchyMicrobench();

/** STREAM-like memory-bandwidth microbenchmark. */
sim::ServiceProfile streamMicrobench();

/**
 * "Run" the three microbenchmarks on all cores at max DVFS for one
 * interval and take the element-wise maximum of the resulting counter
 * vectors: the normalisation ceiling for each PMC.
 */
sim::PmcVector calibrateCounterMaxima(const sim::MachineConfig &machine);

} // namespace twig::services

#endif // TWIG_SERVICES_MICROBENCH_HH
