/**
 * @file
 * The workload catalogue: parameterised models of the Tailbench LC
 * services the paper evaluates (Masstree, Xapian, Moses, Img-dnn,
 * Table II) plus Memcached and Web-Search (used for Fig. 1).
 *
 * Parameters are chosen so that (a) the knee of each service's
 * latency/load curve on the full socket at max DVFS lands at its
 * nominal maximum load, and (b) the qualitative contention behaviour
 * the paper describes holds: Masstree is highly *sensitive* to memory
 * bandwidth interference while using little itself; Moses is *hungry*
 * for bandwidth and LLC capacity; Img-dnn is compute-bound.
 *
 * QoS targets are the p99 each service achieves at ~90 % of its maximum
 * load with all cores at the highest DVFS state (plus margin) — the
 * methodology of paper §V ("We specify the QoS targets and maximum
 * incoming load according to the capacity and characteristics of our
 * platform"); bench/tab2_service_capacity regenerates the table.
 */

#ifndef TWIG_SERVICES_TAILBENCH_HH
#define TWIG_SERVICES_TAILBENCH_HH

#include <string>
#include <vector>

#include "sim/service_profile.hh"

namespace twig::services {

/** In-memory key-value store index (Table II: tightest QoS target). */
sim::ServiceProfile masstree();

/** Open-source search engine (Table II). */
sim::ServiceProfile xapian();

/** Statistical machine translation (Table II; cache/bandwidth hungry). */
sim::ServiceProfile moses();

/** Handwriting-recognition DNN (Table II; compute-bound). */
sim::ServiceProfile imgdnn();

/** Key-value cache (used in the Fig. 1 motivation study). */
sim::ServiceProfile memcached();

/** Web-search leaf node (used in the Fig. 1 motivation study). */
sim::ServiceProfile websearch();

/** OLTP in-memory database (not in the paper's evaluation; included
 * for full Tailbench coverage). */
sim::ServiceProfile silo();

/** Speech recognition (compute-heavy, long requests). */
sim::ServiceProfile sphinx();

/** Disk-backed OLTP database. */
sim::ServiceProfile shore();

/** Java middleware (SPECjbb-like). */
sim::ServiceProfile specjbb();

/** The four Table II services, in table order. */
std::vector<sim::ServiceProfile> tailbenchCatalogue();

/** Every modelled Tailbench service (the paper's four plus silo,
 * sphinx, shore and specjbb) — the full suite of Kasture & Sanchez. */
std::vector<sim::ServiceProfile> fullCatalogue();

/** Lookup by (case-sensitive) name across all six services. */
sim::ServiceProfile byName(const std::string &name);

} // namespace twig::services

#endif // TWIG_SERVICES_TAILBENCH_HH
