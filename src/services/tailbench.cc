#include "services/tailbench.hh"

#include "common/error.hh"

namespace twig::services {

sim::ServiceProfile
masstree()
{
    sim::ServiceProfile p;
    p.name = "masstree";
    p.maxLoadRps = 2400.0;
    p.qosTargetMs = 36.0;  // 1.3x the p99 at 90% load, full allocation
    p.timeoutMs = 220.0;   // ~6x target: clients abandon hopeless requests
    p.baseServiceTimeMs = 6.75; // knee of 18 cores @ 2 GHz near max load
    p.serviceTimeCv = 0.7;
    p.freqExponent = 0.85;      // partially bound by memory latency
    p.memTrafficPerReqMB = 2.0; // modest own bandwidth use...
    p.bwSensitivity = 1.3;      // ...but extremely interference-sensitive
    p.llcFootprintMB = 12.0;
    p.llcSensitivity = 0.6;
    p.instructionsPerReqM = 10.8; // IPC ~0.8 (pointer chasing)
    p.uopsPerInstr = 1.25;
    p.branchFraction = 0.20;
    p.branchMissRate = 0.012;
    p.l1dPerInstr = 0.42;
    p.l1iPerInstr = 0.06;
    p.llcAccessPerInstr = 0.030;
    p.llcBaseMissRate = 0.45;
    return p;
}

sim::ServiceProfile
xapian()
{
    sim::ServiceProfile p;
    p.name = "xapian";
    p.maxLoadRps = 1000.0;
    p.qosTargetMs = 136.0;
    p.timeoutMs = 820.0;
    p.baseServiceTimeMs = 16.2;
    p.serviceTimeCv = 1.1;      // query cost varies widely
    p.freqExponent = 0.95;
    p.memTrafficPerReqMB = 6.0;
    p.bwSensitivity = 0.6;
    p.llcFootprintMB = 24.0;
    p.llcSensitivity = 0.5;
    p.instructionsPerReqM = 35.6; // IPC ~1.1
    p.uopsPerInstr = 1.30;
    p.branchFraction = 0.22;
    p.branchMissRate = 0.030;
    p.l1dPerInstr = 0.38;
    p.l1iPerInstr = 0.10;
    p.llcAccessPerInstr = 0.018;
    p.llcBaseMissRate = 0.35;
    return p;
}

sim::ServiceProfile
moses()
{
    sim::ServiceProfile p;
    p.name = "moses";
    p.maxLoadRps = 2800.0;
    p.qosTargetMs = 43.0;
    p.timeoutMs = 260.0;
    p.baseServiceTimeMs = 5.79;
    p.serviceTimeCv = 0.9;
    p.freqExponent = 0.80;       // heavily memory bound
    p.memTrafficPerReqMB = 14.0; // bandwidth hungry (paper §V-B2)
    p.bwSensitivity = 0.5;
    p.llcFootprintMB = 40.0;     // cache-capacity hungry
    p.llcSensitivity = 0.45;
    p.instructionsPerReqM = 11.6; // IPC ~1.0
    p.uopsPerInstr = 1.35;
    p.branchFraction = 0.18;
    p.branchMissRate = 0.022;
    p.l1dPerInstr = 0.45;
    p.l1iPerInstr = 0.09;
    p.llcAccessPerInstr = 0.040;
    p.llcBaseMissRate = 0.55;
    return p;
}

sim::ServiceProfile
imgdnn()
{
    sim::ServiceProfile p;
    p.name = "img-dnn";
    p.maxLoadRps = 1100.0;
    p.qosTargetMs = 49.0;
    p.timeoutMs = 300.0;
    p.baseServiceTimeMs = 14.73;
    p.serviceTimeCv = 0.4;       // uniform DNN inference cost
    p.freqExponent = 1.0;        // compute bound
    p.memTrafficPerReqMB = 4.0;
    p.bwSensitivity = 0.35;
    p.llcFootprintMB = 18.0;
    p.llcSensitivity = 0.3;
    p.instructionsPerReqM = 47.1; // IPC ~1.6 (dense kernels)
    p.uopsPerInstr = 1.15;
    p.branchFraction = 0.08;
    p.branchMissRate = 0.006;
    p.l1dPerInstr = 0.50;
    p.l1iPerInstr = 0.04;
    p.llcAccessPerInstr = 0.012;
    p.llcBaseMissRate = 0.40;
    return p;
}

sim::ServiceProfile
memcached()
{
    sim::ServiceProfile p;
    p.name = "memcached";
    p.maxLoadRps = 6000.0;
    p.qosTargetMs = 10.5;
    p.timeoutMs = 70.0;
    p.baseServiceTimeMs = 2.70;
    p.serviceTimeCv = 0.5;
    p.freqExponent = 0.85;
    p.memTrafficPerReqMB = 1.2;
    p.bwSensitivity = 1.1;
    p.llcFootprintMB = 10.0;
    p.llcSensitivity = 0.5;
    p.instructionsPerReqM = 4.9; // IPC ~0.9
    p.uopsPerInstr = 1.20;
    p.branchFraction = 0.21;
    p.branchMissRate = 0.010;
    p.l1dPerInstr = 0.40;
    p.l1iPerInstr = 0.07;
    p.llcAccessPerInstr = 0.025;
    p.llcBaseMissRate = 0.50;
    return p;
}

sim::ServiceProfile
websearch()
{
    sim::ServiceProfile p;
    p.name = "web-search";
    p.maxLoadRps = 1200.0;
    p.qosTargetMs = 126.0;
    p.timeoutMs = 760.0;
    p.baseServiceTimeMs = 13.5;
    p.serviceTimeCv = 1.2;
    p.freqExponent = 0.9;
    p.memTrafficPerReqMB = 8.0;
    p.bwSensitivity = 0.7;
    p.llcFootprintMB = 28.0;
    p.llcSensitivity = 0.5;
    p.instructionsPerReqM = 32.4; // IPC ~1.2
    p.uopsPerInstr = 1.30;
    p.branchFraction = 0.24;
    p.branchMissRate = 0.035;
    p.l1dPerInstr = 0.36;
    p.l1iPerInstr = 0.11;
    p.llcAccessPerInstr = 0.020;
    p.llcBaseMissRate = 0.40;
    return p;
}


sim::ServiceProfile
silo()
{
    sim::ServiceProfile p;
    p.name = "silo";
    p.maxLoadRps = 4000.0;
    p.qosTargetMs = 21.0; // same 1.3x-p99-at-90%-load rule
    p.timeoutMs = 130.0;
    p.baseServiceTimeMs = 4.05; // knee rule: 0.9 * 18 / maxLoad
    p.serviceTimeCv = 0.6;
    p.freqExponent = 0.9;
    p.memTrafficPerReqMB = 1.5;
    p.bwSensitivity = 0.9;
    p.llcFootprintMB = 16.0;
    p.llcSensitivity = 0.5;
    p.instructionsPerReqM = 8.1; // IPC ~1.0
    p.uopsPerInstr = 1.25;
    p.branchFraction = 0.19;
    p.branchMissRate = 0.011;
    p.l1dPerInstr = 0.41;
    p.l1iPerInstr = 0.07;
    p.llcAccessPerInstr = 0.022;
    p.llcBaseMissRate = 0.40;
    return p;
}

sim::ServiceProfile
sphinx()
{
    sim::ServiceProfile p;
    p.name = "sphinx";
    p.maxLoadRps = 30.0; // seconds-long utterances: very low RPS
    p.qosTargetMs = 2600.0;
    p.timeoutMs = 13500.0;
    p.baseServiceTimeMs = 540.0;
    p.serviceTimeCv = 0.5;
    p.freqExponent = 1.0; // GMM scoring is compute bound
    p.memTrafficPerReqMB = 120.0;
    p.bwSensitivity = 0.4;
    p.llcFootprintMB = 30.0;
    p.llcSensitivity = 0.35;
    p.instructionsPerReqM = 1600.0; // IPC ~1.5
    p.uopsPerInstr = 1.15;
    p.branchFraction = 0.10;
    p.branchMissRate = 0.008;
    p.l1dPerInstr = 0.48;
    p.l1iPerInstr = 0.05;
    p.llcAccessPerInstr = 0.014;
    p.llcBaseMissRate = 0.45;
    return p;
}

sim::ServiceProfile
shore()
{
    sim::ServiceProfile p;
    p.name = "shore";
    p.maxLoadRps = 1800.0;
    p.qosTargetMs = 55.0;
    p.timeoutMs = 330.0;
    p.baseServiceTimeMs = 9.0;
    p.serviceTimeCv = 1.0; // I/O-path variance
    p.freqExponent = 0.7;  // storage-stack bound
    p.memTrafficPerReqMB = 5.0;
    p.bwSensitivity = 0.6;
    p.llcFootprintMB = 22.0;
    p.llcSensitivity = 0.45;
    p.instructionsPerReqM = 12.6; // IPC ~0.7
    p.uopsPerInstr = 1.30;
    p.branchFraction = 0.23;
    p.branchMissRate = 0.025;
    p.l1dPerInstr = 0.44;
    p.l1iPerInstr = 0.12;
    p.llcAccessPerInstr = 0.030;
    p.llcBaseMissRate = 0.55;
    return p;
}

sim::ServiceProfile
specjbb()
{
    sim::ServiceProfile p;
    p.name = "specjbb";
    p.maxLoadRps = 6500.0;
    p.qosTargetMs = 13.0;
    p.timeoutMs = 80.0;
    p.baseServiceTimeMs = 2.49;
    p.serviceTimeCv = 0.9; // GC pauses fatten the tail
    p.freqExponent = 0.95;
    p.memTrafficPerReqMB = 2.5;
    p.bwSensitivity = 0.7;
    p.llcFootprintMB = 26.0;
    p.llcSensitivity = 0.5;
    p.instructionsPerReqM = 6.0; // IPC ~1.2
    p.uopsPerInstr = 1.35;
    p.branchFraction = 0.20;
    p.branchMissRate = 0.020;
    p.l1dPerInstr = 0.42;
    p.l1iPerInstr = 0.13; // JITted code footprint
    p.llcAccessPerInstr = 0.020;
    p.llcBaseMissRate = 0.45;
    return p;
}

std::vector<sim::ServiceProfile>
fullCatalogue()
{
    return {masstree(), xapian(),  moses(), imgdnn(),
            silo(),     sphinx(),  shore(), specjbb()};
}

std::vector<sim::ServiceProfile>
tailbenchCatalogue()
{
    return {masstree(), xapian(), moses(), imgdnn()};
}

sim::ServiceProfile
byName(const std::string &name)
{
    for (const auto &p : {masstree(), xapian(), moses(), imgdnn(),
                          memcached(), websearch(), silo(), sphinx(),
                          shore(), specjbb()}) {
        if (p.name == name)
            return p;
    }
    common::fatal("unknown service: ", name);
}

} // namespace twig::services
