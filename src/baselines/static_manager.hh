/**
 * @file
 * Static mapping baseline (paper §V-A): every core at the highest DVFS
 * state, all cores granted to each service's socket — no adaptation.
 */

#ifndef TWIG_BASELINES_STATIC_MANAGER_HH
#define TWIG_BASELINES_STATIC_MANAGER_HH

#include "core/task_manager.hh"

namespace twig::baselines {

/** Shared per-service knowledge for the baseline managers. */
struct BaselineServiceSpec
{
    std::string name;
    double qosTargetMs = 10.0;
    double maxLoadRps = 1000.0;
};

/** All cores, maximum DVFS, forever. */
class StaticManager : public core::TaskManager
{
  public:
    explicit StaticManager(const sim::MachineConfig &machine)
        : machine_(machine)
    {
    }

    std::string name() const override { return "static"; }

    void
    decideInto(const sim::ServerIntervalStats &stats,
               std::vector<core::ResourceRequest> &out) override
    {
        out.assign(stats.services.size(),
                   core::ResourceRequest{machine_.numCores,
                                         machine_.dvfs.maxIndex()});
    }

  private:
    sim::MachineConfig machine_;
};

} // namespace twig::baselines

#endif // TWIG_BASELINES_STATIC_MANAGER_HH
