#include "baselines/hipster.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace twig::baselines {

namespace {

rl::QTableConfig
tableConfig(const HipsterConfig &cfg, std::size_t num_configs)
{
    rl::QTableConfig qc;
    qc.numStates = static_cast<std::size_t>(
        std::ceil(1.0 / cfg.bucketFraction)) + 1;
    qc.numActions = num_configs;
    qc.learningRate = cfg.learningRate;
    qc.discount = cfg.discount;
    // Pessimistic initialisation: a configuration the heuristic never
    // visited must not win the post-learning argmax on optimism alone
    // (compressed runs cannot amortise exhaustive exploration).
    qc.optimisticInit = -20.0;
    return qc;
}

} // namespace

Hipster::Hipster(const HipsterConfig &cfg,
                 const sim::MachineConfig &machine,
                 const BaselineServiceSpec &spec, std::uint64_t seed)
    : cfg_(cfg), machine_(machine), spec_(spec), rng_(seed),
      configs_(), qtable_(rl::QTableConfig{}), heuristicIdx_(0),
      prevConfig_(0)
{
    common::fatalIf(cfg.bucketFraction <= 0.0 || cfg.bucketFraction > 1.0,
                    "hipster: bucket fraction out of (0, 1]");

    // Enumerate every mapping configuration, ordered by increasing
    // power efficiency (a cores * f^3 proxy).
    for (std::size_t c = 1; c <= machine.numCores; ++c) {
        for (std::size_t d = 0; d < machine.dvfs.numStates(); ++d) {
            const double f = machine.dvfs.freq(d);
            configs_.push_back({c, d, static_cast<double>(c) * f * f * f});
        }
    }
    std::sort(configs_.begin(), configs_.end(),
              [](const Config &a, const Config &b) {
                  return a.powerProxy < b.powerProxy;
              });

    qtable_ = rl::QTable(tableConfig(cfg, configs_.size()));
    heuristicIdx_ = configs_.size() - 1; // start from the safest config
    prevConfig_ = heuristicIdx_;
}

std::size_t
Hipster::loadBucket(double rps) const
{
    const double fraction =
        std::clamp(rps / spec_.maxLoadRps, 0.0, 1.0);
    const auto bucket = static_cast<std::size_t>(
        fraction / cfg_.bucketFraction);
    return std::min(bucket, qtable_.config().numStates - 1);
}

double
Hipster::rewardFor(const sim::ServiceIntervalStats &svc,
                   std::size_t config_idx) const
{
    // Hipster's reward: meet the QoS target with the cheapest mapping.
    // Credit assignment uses the instantaneous p99 (the windowed
    // measure lags the configuration by a couple of intervals and
    // would poison the table entries of configurations entered right
    // after a violation).
    const double tardiness = svc.p99InstantMs / spec_.qosTargetMs;
    if (tardiness > 1.0)
        return -30.0;
    const double max_proxy = configs_.back().powerProxy;
    return 1.0 + (max_proxy - configs_[config_idx].powerProxy) / max_proxy;
}

void
Hipster::decideInto(const sim::ServerIntervalStats &stats,
                    std::vector<core::ResourceRequest> &out)
{
    common::fatalIf(stats.services.size() != 1,
                    "hipster manages exactly one service");
    const auto &svc = stats.services.front();
    const std::size_t bucket = loadBucket(svc.offeredRps);

    // Learn from the previous decision's outcome — but only when the
    // same configuration was also active the interval before (settle
    // time): right after a switch the measured latency still carries
    // the previous configuration's backlog and would poison the table.
    if (havePrevPrev_ && prevConfig_ == prevPrevConfig_) {
        const double r = rewardFor(svc, prevConfig_);
        qtable_.update(prevBucket_, prevConfig_, r, bucket);
    }

    std::size_t chosen;
    if (step_ < cfg_.learningPhaseSteps) {
        // Heuristic phase: walk the power-ordered configuration list.
        const double tardiness = svc.p99Ms / spec_.qosTargetMs;
        if (tardiness >= cfg_.upThreshold) {
            // Too close to the target: jump to a beefier config. The
            // jump grows with the violation severity, which is what
            // makes Hipster oscillate at high load (paper Fig. 10).
            const std::size_t jump = tardiness > 1.0 ? 24 : 8;
            heuristicIdx_ =
                std::min(heuristicIdx_ + jump, configs_.size() - 1);
        } else if (tardiness < cfg_.downThreshold && heuristicIdx_ > 0) {
            --heuristicIdx_;
        }
        chosen = heuristicIdx_;
    } else {
        chosen = qtable_.select(bucket, cfg_.epsilonAfterLearning, rng_);
    }

    if (havePrev_ && configs_[chosen].cores != configs_[prevConfig_].cores)
        ++migrations_;

    prevBucket_ = bucket;
    prevPrevConfig_ = prevConfig_;
    havePrevPrev_ = havePrev_;
    prevConfig_ = chosen;
    havePrev_ = true;
    ++step_;

    out.assign(1, core::ResourceRequest{configs_[chosen].cores,
                                        configs_[chosen].dvfs});
}

} // namespace twig::baselines
