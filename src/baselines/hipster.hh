/**
 * @file
 * Reimplementation of Hipster (Nishtala et al., HPCA 2017) from its
 * published description (paper §V-A), as the Twig authors configured
 * it: a hybrid task manager for a *single* LC service that runs a
 * heuristic during a learning phase, recording experience into a
 * tabular Q-learner keyed on the load (requests per second) quantised
 * into 4 % buckets, then switches to the learned policy.
 *
 *  * Heuristic: mapping configurations (cores x DVFS) are ordered by
 *    increasing power efficiency; the state machine moves to a more
 *    powerful configuration when the tail latency gets too close to
 *    the target and steps down when it is far below it.
 *  * Q-learning: learning rate 0.6, discount 0.9 (paper §V-A), reward
 *    favouring low-power configurations that meet the QoS target.
 */

#ifndef TWIG_BASELINES_HIPSTER_HH
#define TWIG_BASELINES_HIPSTER_HH

#include <cstddef>
#include <vector>

#include "baselines/static_manager.hh"
#include "common/rng.hh"
#include "core/task_manager.hh"
#include "rl/qtable.hh"

namespace twig::baselines {

/** Hipster knobs (defaults per paper §V-A). */
struct HipsterConfig
{
    /** Load bucket width as a fraction of max load (paper: 4 %). */
    double bucketFraction = 0.04;
    /** Steps before switching from heuristic to the learned policy
     * (paper: 7500 s; benches compress). */
    std::size_t learningPhaseSteps = 7500;
    double learningRate = 0.6;
    double discount = 0.9;
    /** Exploration after the learning phase. */
    double epsilonAfterLearning = 0.05;
    /** Heuristic thresholds: step up when latency exceeds this fraction
     * of the target, step down when below the lower fraction. */
    double upThreshold = 0.85;
    double downThreshold = 0.75;
};

/** The Hipster manager (single service). */
class Hipster : public core::TaskManager
{
  public:
    Hipster(const HipsterConfig &cfg, const sim::MachineConfig &machine,
            const BaselineServiceSpec &spec, std::uint64_t seed);

    std::string name() const override { return "hipster"; }

    void decideInto(const sim::ServerIntervalStats &stats,
                    std::vector<core::ResourceRequest> &out) override;

    /** Number of (cores, DVFS) configurations in the table. */
    std::size_t numConfigs() const { return configs_.size(); }

    /** Q-table memory footprint (memory-complexity study). */
    std::size_t tableBytes() const { return qtable_.memoryBytes(); }

    /** Number of core-allocation changes made so far (migrations). */
    std::size_t migrations() const { return migrations_; }

    bool inLearningPhase() const { return step_ < cfg_.learningPhaseSteps; }

  private:
    struct Config
    {
        std::size_t cores;
        std::size_t dvfs;
        double powerProxy; // cores * f^3 ordering key
    };

    std::size_t loadBucket(double rps) const;
    double rewardFor(const sim::ServiceIntervalStats &svc,
                     std::size_t config_idx) const;

    HipsterConfig cfg_;
    sim::MachineConfig machine_;
    BaselineServiceSpec spec_;
    common::Rng rng_;
    std::vector<Config> configs_; // sorted by increasing power
    rl::QTable qtable_;
    std::size_t step_ = 0;
    std::size_t heuristicIdx_; // current position in the config order
    std::size_t prevConfig_;
    std::size_t prevPrevConfig_ = 0;
    std::size_t prevBucket_ = 0;
    bool havePrev_ = false;
    bool havePrevPrev_ = false;
    std::size_t migrations_ = 0;
};

} // namespace twig::baselines

#endif // TWIG_BASELINES_HIPSTER_HH
