#include "baselines/parties.hh"

#include <algorithm>

#include "common/error.hh"

namespace twig::baselines {

Parties::Parties(const PartiesConfig &cfg,
                 const sim::MachineConfig &machine,
                 std::vector<BaselineServiceSpec> specs,
                 std::uint64_t seed)
    : cfg_(cfg), machine_(machine), specs_(std::move(specs)), rng_(seed),
      cores_(specs_.size(), machine.numCores),
      dvfs_(specs_.size(), machine.dvfs.maxIndex()),
      nextReclaim_(specs_.size(), Resource::Cores)
{
    common::fatalIf(specs_.empty(), "parties: no services");
}

void
Parties::upsize(std::size_t svc, Resource r)
{
    if (r == Resource::Cores) {
        if (cores_[svc] < machine_.numCores) {
            ++cores_[svc];
            ++migrations_;
        } else if (dvfs_[svc] < machine_.dvfs.maxIndex()) {
            ++dvfs_[svc]; // cores exhausted: fall back to DVFS
        }
    } else {
        if (dvfs_[svc] < machine_.dvfs.maxIndex()) {
            ++dvfs_[svc];
        } else if (cores_[svc] < machine_.numCores) {
            ++cores_[svc]; // DVFS exhausted: fall back to cores
            ++migrations_;
        }
    }
}

void
Parties::downsize(std::size_t svc, Resource r)
{
    if (r == Resource::Cores) {
        if (cores_[svc] > 1) {
            --cores_[svc];
            ++migrations_;
        }
    } else {
        if (dvfs_[svc] > 0)
            --dvfs_[svc];
    }
}

void
Parties::decideInto(const sim::ServerIntervalStats &stats,
                    std::vector<core::ResourceRequest> &out)
{
    common::fatalIf(stats.services.size() != specs_.size(),
                    "parties: telemetry/spec count mismatch");

    if (step_++ % cfg_.periodSteps != 0) {
        out.resize(specs_.size());
        for (std::size_t i = 0; i < specs_.size(); ++i)
            out[i] = {cores_[i], dvfs_[i]};
        return;
    }

    std::vector<double> tardiness(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        tardiness[i] =
            stats.services[i].p99Ms / specs_[i].qosTargetMs;
    }

    // Verify pending reclaims: revert any that pushed the service
    // towards violation, and switch that service's preferred resource.
    std::vector<Adjustment> still_ok;
    for (const Adjustment &adj : pending_) {
        if (tardiness[adj.service] >= cfg_.pressureFraction) {
            upsize(adj.service, adj.resource); // revert
            nextReclaim_[adj.service] =
                adj.resource == Resource::Cores ? Resource::Dvfs
                                                : Resource::Cores;
        }
    }
    pending_ = std::move(still_ok);

    // Find the most pressured and the most slack service.
    std::size_t worst = 0, best = 0;
    for (std::size_t i = 1; i < specs_.size(); ++i) {
        if (tardiness[i] > tardiness[worst])
            worst = i;
        if (tardiness[i] < tardiness[best])
            best = i;
    }

    if (tardiness[worst] >= cfg_.pressureFraction) {
        // Under pressure: upsize one randomly-chosen resource.
        const Resource r = rng_.bernoulli(0.5) ? Resource::Cores
                                               : Resource::Dvfs;
        upsize(worst, r);
    } else {
        // All services comfortable: reclaim from the one with the most
        // slack, one resource at a time.
        const Resource r = nextReclaim_[best];
        const std::size_t before_cores = cores_[best];
        const std::size_t before_dvfs = dvfs_[best];
        downsize(best, r);
        if (cores_[best] != before_cores || dvfs_[best] != before_dvfs)
            pending_.push_back({best, r, true});
    }

    out.resize(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i)
        out[i] = {cores_[i], dvfs_[i]};
}

} // namespace twig::baselines
