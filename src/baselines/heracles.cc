#include "baselines/heracles.hh"

#include <algorithm>

#include "common/error.hh"
#include "sim/pmc.hh"

namespace twig::baselines {

Heracles::Heracles(const HeraclesConfig &cfg,
                   const sim::MachineConfig &machine,
                   const BaselineServiceSpec &spec)
    : cfg_(cfg), machine_(machine), spec_(spec),
      cores_(machine.numCores), dvfs_(machine.dvfs.maxIndex())
{
}

void
Heracles::decideInto(const sim::ServerIntervalStats &stats,
                     std::vector<core::ResourceRequest> &out)
{
    common::fatalIf(stats.services.size() != 1,
                    "heracles manages exactly one service");
    const auto &svc = stats.services.front();
    const double tardiness = svc.p99Ms / spec_.qosTargetMs;
    const double load_fraction = svc.offeredRps / spec_.maxLoadRps;
    const std::size_t prev_cores = cores_;

    // Main controller: violation or high load -> everything, 5 minutes.
    if (step_ % cfg_.mainPeriodSteps == 0) {
        if (tardiness > 1.0 || load_fraction > cfg_.loadGuardFraction)
            lockoutUntil_ = step_ + cfg_.lockoutSteps;
    }

    const double bw_proxy =
        svc.pmcs[static_cast<std::size_t>(sim::Pmc::LlcMisses)];

    if (step_ < lockoutUntil_) {
        cores_ = machine_.numCores;
        dvfs_ = machine_.dvfs.maxIndex();
    } else {
        // Core & memory controller.
        if (step_ % cfg_.corePeriodSteps == 0) {
            const bool bw_increased = prevBandwidthProxy_ > 0.0 &&
                bw_proxy >
                    prevBandwidthProxy_ * (1.0 + cfg_.bandwidthGrowth);
            if (tardiness >= cfg_.latencyGrowFraction || bw_increased) {
                cores_ = std::min(cores_ + 1, machine_.numCores);
            } else if (cores_ > 1) {
                --cores_;
            }
        }
        // Power controller: back off DVFS only near the TDP cap.
        if (step_ % cfg_.powerPeriodSteps == 0) {
            if (stats.socketPowerW >= cfg_.powerCapFraction * cfg_.tdpW) {
                if (dvfs_ > 0)
                    --dvfs_;
            } else if (dvfs_ < machine_.dvfs.maxIndex()) {
                ++dvfs_;
            }
        }
    }

    prevBandwidthProxy_ = bw_proxy;
    if (cores_ != prev_cores)
        ++migrations_;
    ++step_;
    out.assign(1, core::ResourceRequest{cores_, dvfs_});
}

} // namespace twig::baselines
