/**
 * @file
 * Reimplementation of Heracles (Lo et al., ISCA 2015) from its
 * published description as configured by the Twig authors (paper §V-A):
 * a three-level feedback controller for a single LC service.
 *
 *  * Main controller (every 15 s): if the service violates its tail
 *    latency or load exceeds 85 %, allocate *all* resources to the LC
 *    service for 5 minutes.
 *  * Core & memory controller (every 2 s): grow the core allocation
 *    when tail latency nears the target (the paper uses 80 %; we use
 *    70 % because our simulated tail is noisier at the per-interval
 *    granularity) or measured memory bandwidth has increased;
 *    otherwise reclaim one core.
 *  * Power controller (every 2 s): lower the DVFS state when power
 *    reaches 90 % of TDP (otherwise stay at the maximum state).
 *
 * Intel CAT is not modelled (the Twig authors could not use it on
 * their servers either).
 */

#ifndef TWIG_BASELINES_HERACLES_HH
#define TWIG_BASELINES_HERACLES_HH

#include <cstddef>

#include "baselines/static_manager.hh"
#include "core/task_manager.hh"

namespace twig::baselines {

/** Heracles controller periods & thresholds (paper §V-A). */
struct HeraclesConfig
{
    std::size_t mainPeriodSteps = 15;
    std::size_t corePeriodSteps = 2;
    std::size_t powerPeriodSteps = 2;
    /** Lockout after a violation: all resources for this long
     * (paper: 5 min). */
    std::size_t lockoutSteps = 300;
    double loadGuardFraction = 0.85;
    double latencyGrowFraction = 0.70;
    double powerCapFraction = 0.90;
    /** TDP of the socket, W (E5-2695v4: 120 W). */
    double tdpW = 120.0;
    /** Relative growth in the bandwidth proxy treated as "increased". */
    double bandwidthGrowth = 0.05;
};

/** The Heracles manager (single service). */
class Heracles : public core::TaskManager
{
  public:
    Heracles(const HeraclesConfig &cfg, const sim::MachineConfig &machine,
             const BaselineServiceSpec &spec);

    std::string name() const override { return "heracles"; }

    void decideInto(const sim::ServerIntervalStats &stats,
                    std::vector<core::ResourceRequest> &out) override;

    std::size_t migrations() const { return migrations_; }

  private:
    HeraclesConfig cfg_;
    sim::MachineConfig machine_;
    BaselineServiceSpec spec_;
    std::size_t step_ = 0;
    std::size_t cores_;
    std::size_t dvfs_;
    std::size_t lockoutUntil_ = 0;
    double prevBandwidthProxy_ = 0.0;
    std::size_t migrations_ = 0;
};

} // namespace twig::baselines

#endif // TWIG_BASELINES_HERACLES_HH
