/**
 * @file
 * Reimplementation of PARTIES (Chen et al., ASPLOS 2019) from its
 * published description as configured by the Twig authors (paper §V-A):
 * a feedback controller for *multiple* colocated LC services that
 * adjusts one resource at a time every 2 s.
 *
 *  * If any service's tail latency reaches 95 % of its target, one of
 *    its control resources (core count or DVFS; CAT and explicit memory
 *    allocation are not modelled, matching the Twig setup) is upsized.
 *  * Otherwise resources are reclaimed from the service with the most
 *    slack, one resource at a time; if the reclaim pushes the service
 *    toward violation, it is reverted and the controller tries the
 *    other resource next time.
 */

#ifndef TWIG_BASELINES_PARTIES_HH
#define TWIG_BASELINES_PARTIES_HH

#include <cstddef>
#include <vector>

#include "baselines/static_manager.hh"
#include "common/rng.hh"
#include "core/task_manager.hh"

namespace twig::baselines {

/** PARTIES knobs (paper §V-A). */
struct PartiesConfig
{
    std::size_t periodSteps = 2;
    /** Upsize when tail latency reaches this fraction of the target.
     * The paper uses 95%; our simulated per-interval tail estimate is
     * noisier than their 2 s samples, so the default rides slightly
     * safer to give PARTIES its paper-like QoS guarantee. */
    double pressureFraction = 0.90;
};

/** The PARTIES manager (one or more services). */
class Parties : public core::TaskManager
{
  public:
    Parties(const PartiesConfig &cfg, const sim::MachineConfig &machine,
            std::vector<BaselineServiceSpec> specs, std::uint64_t seed);

    std::string name() const override { return "parties"; }

    void decideInto(const sim::ServerIntervalStats &stats,
                    std::vector<core::ResourceRequest> &out) override;

    std::size_t migrations() const { return migrations_; }

  private:
    enum class Resource { Cores, Dvfs };

    struct Adjustment
    {
        std::size_t service;
        Resource resource;
        bool wasReclaim;
    };

    void upsize(std::size_t svc, Resource r);
    void downsize(std::size_t svc, Resource r);

    PartiesConfig cfg_;
    sim::MachineConfig machine_;
    std::vector<BaselineServiceSpec> specs_;
    common::Rng rng_;
    std::vector<std::size_t> cores_;
    std::vector<std::size_t> dvfs_;
    /** Next resource each service's reclaim should try (alternates
     * after a reverted adjustment). */
    std::vector<Resource> nextReclaim_;
    std::vector<Adjustment> pending_; // reclaims awaiting verification
    std::size_t step_ = 0;
    std::size_t migrations_ = 0;
};

} // namespace twig::baselines

#endif // TWIG_BASELINES_PARTIES_HH
