# Empty compiler generated dependencies file for colocated_services.
# This may be replaced when dependencies are built.
