file(REMOVE_RECURSE
  "CMakeFiles/colocated_services.dir/colocated_services.cpp.o"
  "CMakeFiles/colocated_services.dir/colocated_services.cpp.o.d"
  "colocated_services"
  "colocated_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocated_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
