file(REMOVE_RECURSE
  "CMakeFiles/twig_sim_cli.dir/twig_sim.cc.o"
  "CMakeFiles/twig_sim_cli.dir/twig_sim.cc.o.d"
  "twig_sim"
  "twig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
