# Empty dependencies file for twig_sim_cli.
# This may be replaced when dependencies are built.
