file(REMOVE_RECURSE
  "CMakeFiles/twig_core.dir/counter_selection.cc.o"
  "CMakeFiles/twig_core.dir/counter_selection.cc.o.d"
  "CMakeFiles/twig_core.dir/mapper.cc.o"
  "CMakeFiles/twig_core.dir/mapper.cc.o.d"
  "CMakeFiles/twig_core.dir/monitor.cc.o"
  "CMakeFiles/twig_core.dir/monitor.cc.o.d"
  "CMakeFiles/twig_core.dir/power_model.cc.o"
  "CMakeFiles/twig_core.dir/power_model.cc.o.d"
  "CMakeFiles/twig_core.dir/twig_manager.cc.o"
  "CMakeFiles/twig_core.dir/twig_manager.cc.o.d"
  "libtwig_core.a"
  "libtwig_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
