
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/counter_selection.cc" "src/core/CMakeFiles/twig_core.dir/counter_selection.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/counter_selection.cc.o.d"
  "/root/repo/src/core/mapper.cc" "src/core/CMakeFiles/twig_core.dir/mapper.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/mapper.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/twig_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/power_model.cc" "src/core/CMakeFiles/twig_core.dir/power_model.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/power_model.cc.o.d"
  "/root/repo/src/core/twig_manager.cc" "src/core/CMakeFiles/twig_core.dir/twig_manager.cc.o" "gcc" "src/core/CMakeFiles/twig_core.dir/twig_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/twig_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/twig_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/twig_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/twig_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
