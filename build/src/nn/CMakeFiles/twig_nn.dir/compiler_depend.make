# Empty compiler generated dependencies file for twig_nn.
# This may be replaced when dependencies are built.
