file(REMOVE_RECURSE
  "CMakeFiles/twig_nn.dir/bdq.cc.o"
  "CMakeFiles/twig_nn.dir/bdq.cc.o.d"
  "CMakeFiles/twig_nn.dir/layers.cc.o"
  "CMakeFiles/twig_nn.dir/layers.cc.o.d"
  "CMakeFiles/twig_nn.dir/matrix.cc.o"
  "CMakeFiles/twig_nn.dir/matrix.cc.o.d"
  "CMakeFiles/twig_nn.dir/mlp.cc.o"
  "CMakeFiles/twig_nn.dir/mlp.cc.o.d"
  "libtwig_nn.a"
  "libtwig_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
