file(REMOVE_RECURSE
  "libtwig_nn.a"
)
