# Empty dependencies file for twig_services.
# This may be replaced when dependencies are built.
