file(REMOVE_RECURSE
  "CMakeFiles/twig_services.dir/microbench.cc.o"
  "CMakeFiles/twig_services.dir/microbench.cc.o.d"
  "CMakeFiles/twig_services.dir/tailbench.cc.o"
  "CMakeFiles/twig_services.dir/tailbench.cc.o.d"
  "libtwig_services.a"
  "libtwig_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
