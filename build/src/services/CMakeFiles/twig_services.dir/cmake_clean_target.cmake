file(REMOVE_RECURSE
  "libtwig_services.a"
)
