
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/microbench.cc" "src/services/CMakeFiles/twig_services.dir/microbench.cc.o" "gcc" "src/services/CMakeFiles/twig_services.dir/microbench.cc.o.d"
  "/root/repo/src/services/tailbench.cc" "src/services/CMakeFiles/twig_services.dir/tailbench.cc.o" "gcc" "src/services/CMakeFiles/twig_services.dir/tailbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/twig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/twig_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
