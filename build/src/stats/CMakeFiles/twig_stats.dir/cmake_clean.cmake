file(REMOVE_RECURSE
  "CMakeFiles/twig_stats.dir/correlation.cc.o"
  "CMakeFiles/twig_stats.dir/correlation.cc.o.d"
  "CMakeFiles/twig_stats.dir/histogram.cc.o"
  "CMakeFiles/twig_stats.dir/histogram.cc.o.d"
  "CMakeFiles/twig_stats.dir/pca.cc.o"
  "CMakeFiles/twig_stats.dir/pca.cc.o.d"
  "CMakeFiles/twig_stats.dir/regression.cc.o"
  "CMakeFiles/twig_stats.dir/regression.cc.o.d"
  "CMakeFiles/twig_stats.dir/summary.cc.o"
  "CMakeFiles/twig_stats.dir/summary.cc.o.d"
  "libtwig_stats.a"
  "libtwig_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
