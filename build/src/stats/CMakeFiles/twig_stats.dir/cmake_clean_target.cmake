file(REMOVE_RECURSE
  "libtwig_stats.a"
)
