# Empty dependencies file for twig_stats.
# This may be replaced when dependencies are built.
