file(REMOVE_RECURSE
  "libtwig_sim.a"
)
