file(REMOVE_RECURSE
  "CMakeFiles/twig_sim.dir/interference.cc.o"
  "CMakeFiles/twig_sim.dir/interference.cc.o.d"
  "CMakeFiles/twig_sim.dir/loadgen.cc.o"
  "CMakeFiles/twig_sim.dir/loadgen.cc.o.d"
  "CMakeFiles/twig_sim.dir/pmc.cc.o"
  "CMakeFiles/twig_sim.dir/pmc.cc.o.d"
  "CMakeFiles/twig_sim.dir/power.cc.o"
  "CMakeFiles/twig_sim.dir/power.cc.o.d"
  "CMakeFiles/twig_sim.dir/queue_sim.cc.o"
  "CMakeFiles/twig_sim.dir/queue_sim.cc.o.d"
  "CMakeFiles/twig_sim.dir/server.cc.o"
  "CMakeFiles/twig_sim.dir/server.cc.o.d"
  "libtwig_sim.a"
  "libtwig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
