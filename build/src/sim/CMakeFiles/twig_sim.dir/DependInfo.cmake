
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/interference.cc" "src/sim/CMakeFiles/twig_sim.dir/interference.cc.o" "gcc" "src/sim/CMakeFiles/twig_sim.dir/interference.cc.o.d"
  "/root/repo/src/sim/loadgen.cc" "src/sim/CMakeFiles/twig_sim.dir/loadgen.cc.o" "gcc" "src/sim/CMakeFiles/twig_sim.dir/loadgen.cc.o.d"
  "/root/repo/src/sim/pmc.cc" "src/sim/CMakeFiles/twig_sim.dir/pmc.cc.o" "gcc" "src/sim/CMakeFiles/twig_sim.dir/pmc.cc.o.d"
  "/root/repo/src/sim/power.cc" "src/sim/CMakeFiles/twig_sim.dir/power.cc.o" "gcc" "src/sim/CMakeFiles/twig_sim.dir/power.cc.o.d"
  "/root/repo/src/sim/queue_sim.cc" "src/sim/CMakeFiles/twig_sim.dir/queue_sim.cc.o" "gcc" "src/sim/CMakeFiles/twig_sim.dir/queue_sim.cc.o.d"
  "/root/repo/src/sim/server.cc" "src/sim/CMakeFiles/twig_sim.dir/server.cc.o" "gcc" "src/sim/CMakeFiles/twig_sim.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/twig_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
