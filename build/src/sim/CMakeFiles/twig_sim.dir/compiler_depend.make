# Empty compiler generated dependencies file for twig_sim.
# This may be replaced when dependencies are built.
