
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/bdq_learner.cc" "src/rl/CMakeFiles/twig_rl.dir/bdq_learner.cc.o" "gcc" "src/rl/CMakeFiles/twig_rl.dir/bdq_learner.cc.o.d"
  "/root/repo/src/rl/replay.cc" "src/rl/CMakeFiles/twig_rl.dir/replay.cc.o" "gcc" "src/rl/CMakeFiles/twig_rl.dir/replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/twig_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
