file(REMOVE_RECURSE
  "CMakeFiles/twig_rl.dir/bdq_learner.cc.o"
  "CMakeFiles/twig_rl.dir/bdq_learner.cc.o.d"
  "CMakeFiles/twig_rl.dir/replay.cc.o"
  "CMakeFiles/twig_rl.dir/replay.cc.o.d"
  "libtwig_rl.a"
  "libtwig_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
