file(REMOVE_RECURSE
  "libtwig_rl.a"
)
