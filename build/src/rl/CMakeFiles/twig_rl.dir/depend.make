# Empty dependencies file for twig_rl.
# This may be replaced when dependencies are built.
