file(REMOVE_RECURSE
  "CMakeFiles/twig_harness.dir/metrics.cc.o"
  "CMakeFiles/twig_harness.dir/metrics.cc.o.d"
  "CMakeFiles/twig_harness.dir/profiling.cc.o"
  "CMakeFiles/twig_harness.dir/profiling.cc.o.d"
  "CMakeFiles/twig_harness.dir/runner.cc.o"
  "CMakeFiles/twig_harness.dir/runner.cc.o.d"
  "libtwig_harness.a"
  "libtwig_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
