file(REMOVE_RECURSE
  "libtwig_harness.a"
)
