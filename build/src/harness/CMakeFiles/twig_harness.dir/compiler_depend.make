# Empty compiler generated dependencies file for twig_harness.
# This may be replaced when dependencies are built.
