file(REMOVE_RECURSE
  "CMakeFiles/twig_baselines.dir/heracles.cc.o"
  "CMakeFiles/twig_baselines.dir/heracles.cc.o.d"
  "CMakeFiles/twig_baselines.dir/hipster.cc.o"
  "CMakeFiles/twig_baselines.dir/hipster.cc.o.d"
  "CMakeFiles/twig_baselines.dir/parties.cc.o"
  "CMakeFiles/twig_baselines.dir/parties.cc.o.d"
  "libtwig_baselines.a"
  "libtwig_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
