file(REMOVE_RECURSE
  "libtwig_baselines.a"
)
