# Empty dependencies file for twig_baselines.
# This may be replaced when dependencies are built.
