file(REMOVE_RECURSE
  "CMakeFiles/test_loadgen.dir/test_loadgen.cc.o"
  "CMakeFiles/test_loadgen.dir/test_loadgen.cc.o.d"
  "test_loadgen"
  "test_loadgen.pdb"
  "test_loadgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
