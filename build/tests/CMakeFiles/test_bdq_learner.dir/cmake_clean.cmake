file(REMOVE_RECURSE
  "CMakeFiles/test_bdq_learner.dir/test_bdq_learner.cc.o"
  "CMakeFiles/test_bdq_learner.dir/test_bdq_learner.cc.o.d"
  "test_bdq_learner"
  "test_bdq_learner.pdb"
  "test_bdq_learner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdq_learner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
