# Empty compiler generated dependencies file for test_bdq.
# This may be replaced when dependencies are built.
