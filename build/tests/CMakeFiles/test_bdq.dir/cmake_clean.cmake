file(REMOVE_RECURSE
  "CMakeFiles/test_bdq.dir/test_bdq.cc.o"
  "CMakeFiles/test_bdq.dir/test_bdq.cc.o.d"
  "test_bdq"
  "test_bdq.pdb"
  "test_bdq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
