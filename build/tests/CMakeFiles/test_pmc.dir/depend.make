# Empty dependencies file for test_pmc.
# This may be replaced when dependencies are built.
