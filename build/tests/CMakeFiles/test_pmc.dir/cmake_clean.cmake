file(REMOVE_RECURSE
  "CMakeFiles/test_pmc.dir/test_pmc.cc.o"
  "CMakeFiles/test_pmc.dir/test_pmc.cc.o.d"
  "test_pmc"
  "test_pmc.pdb"
  "test_pmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
