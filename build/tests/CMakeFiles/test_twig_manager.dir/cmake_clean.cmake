file(REMOVE_RECURSE
  "CMakeFiles/test_twig_manager.dir/test_twig_manager.cc.o"
  "CMakeFiles/test_twig_manager.dir/test_twig_manager.cc.o.d"
  "test_twig_manager"
  "test_twig_manager.pdb"
  "test_twig_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twig_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
