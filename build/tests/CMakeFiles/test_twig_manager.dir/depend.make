# Empty dependencies file for test_twig_manager.
# This may be replaced when dependencies are built.
