
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mlp.cc" "tests/CMakeFiles/test_mlp.dir/test_mlp.cc.o" "gcc" "tests/CMakeFiles/test_mlp.dir/test_mlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/twig_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/twig_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/twig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/twig_services.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/twig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/twig_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/twig_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/twig_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
