file(REMOVE_RECURSE
  "CMakeFiles/test_bdq_learner_features.dir/test_bdq_learner_features.cc.o"
  "CMakeFiles/test_bdq_learner_features.dir/test_bdq_learner_features.cc.o.d"
  "test_bdq_learner_features"
  "test_bdq_learner_features.pdb"
  "test_bdq_learner_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdq_learner_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
