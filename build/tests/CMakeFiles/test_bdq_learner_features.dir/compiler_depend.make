# Empty compiler generated dependencies file for test_bdq_learner_features.
# This may be replaced when dependencies are built.
