# Empty compiler generated dependencies file for test_counter_selection.
# This may be replaced when dependencies are built.
