file(REMOVE_RECURSE
  "CMakeFiles/test_counter_selection.dir/test_counter_selection.cc.o"
  "CMakeFiles/test_counter_selection.dir/test_counter_selection.cc.o.d"
  "test_counter_selection"
  "test_counter_selection.pdb"
  "test_counter_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
