file(REMOVE_RECURSE
  "CMakeFiles/test_queue_sim.dir/test_queue_sim.cc.o"
  "CMakeFiles/test_queue_sim.dir/test_queue_sim.cc.o.d"
  "test_queue_sim"
  "test_queue_sim.pdb"
  "test_queue_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
