# Empty dependencies file for test_queue_sim.
# This may be replaced when dependencies are built.
