# Empty dependencies file for tab1_counter_selection.
# This may be replaced when dependencies are built.
