file(REMOVE_RECURSE
  "CMakeFiles/tab1_counter_selection.dir/tab1_counter_selection.cc.o"
  "CMakeFiles/tab1_counter_selection.dir/tab1_counter_selection.cc.o.d"
  "tab1_counter_selection"
  "tab1_counter_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_counter_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
