file(REMOVE_RECURSE
  "CMakeFiles/abl_design_knobs.dir/abl_design_knobs.cc.o"
  "CMakeFiles/abl_design_knobs.dir/abl_design_knobs.cc.o.d"
  "abl_design_knobs"
  "abl_design_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_design_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
