# Empty dependencies file for abl_design_knobs.
# This may be replaced when dependencies are built.
