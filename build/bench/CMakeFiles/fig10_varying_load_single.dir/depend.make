# Empty dependencies file for fig10_varying_load_single.
# This may be replaced when dependencies are built.
