file(REMOVE_RECURSE
  "CMakeFiles/fig10_varying_load_single.dir/fig10_varying_load_single.cc.o"
  "CMakeFiles/fig10_varying_load_single.dir/fig10_varying_load_single.cc.o.d"
  "fig10_varying_load_single"
  "fig10_varying_load_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_varying_load_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
