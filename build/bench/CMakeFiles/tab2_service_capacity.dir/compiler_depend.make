# Empty compiler generated dependencies file for tab2_service_capacity.
# This may be replaced when dependencies are built.
