file(REMOVE_RECURSE
  "CMakeFiles/tab2_service_capacity.dir/tab2_service_capacity.cc.o"
  "CMakeFiles/tab2_service_capacity.dir/tab2_service_capacity.cc.o.d"
  "tab2_service_capacity"
  "tab2_service_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_service_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
