file(REMOVE_RECURSE
  "CMakeFiles/fig04_power_model.dir/fig04_power_model.cc.o"
  "CMakeFiles/fig04_power_model.dir/fig04_power_model.cc.o.d"
  "fig04_power_model"
  "fig04_power_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
