# Empty dependencies file for fig04_power_model.
# This may be replaced when dependencies are built.
