file(REMOVE_RECURSE
  "CMakeFiles/fig06_masstree_mapping.dir/fig06_masstree_mapping.cc.o"
  "CMakeFiles/fig06_masstree_mapping.dir/fig06_masstree_mapping.cc.o.d"
  "fig06_masstree_mapping"
  "fig06_masstree_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_masstree_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
