# Empty compiler generated dependencies file for fig06_masstree_mapping.
# This may be replaced when dependencies are built.
