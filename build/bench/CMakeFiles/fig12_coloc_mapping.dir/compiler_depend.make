# Empty compiler generated dependencies file for fig12_coloc_mapping.
# This may be replaced when dependencies are built.
