file(REMOVE_RECURSE
  "CMakeFiles/fig12_coloc_mapping.dir/fig12_coloc_mapping.cc.o"
  "CMakeFiles/fig12_coloc_mapping.dir/fig12_coloc_mapping.cc.o.d"
  "fig12_coloc_mapping"
  "fig12_coloc_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_coloc_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
