file(REMOVE_RECURSE
  "CMakeFiles/fig11_varying_load_coloc.dir/fig11_varying_load_coloc.cc.o"
  "CMakeFiles/fig11_varying_load_coloc.dir/fig11_varying_load_coloc.cc.o.d"
  "fig11_varying_load_coloc"
  "fig11_varying_load_coloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_varying_load_coloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
