# Empty compiler generated dependencies file for fig11_varying_load_coloc.
# This may be replaced when dependencies are built.
