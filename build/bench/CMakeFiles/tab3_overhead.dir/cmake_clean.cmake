file(REMOVE_RECURSE
  "CMakeFiles/tab3_overhead.dir/tab3_overhead.cc.o"
  "CMakeFiles/tab3_overhead.dir/tab3_overhead.cc.o.d"
  "tab3_overhead"
  "tab3_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
