# Empty dependencies file for tab3_overhead.
# This may be replaced when dependencies are built.
