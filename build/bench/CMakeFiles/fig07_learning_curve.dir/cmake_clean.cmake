file(REMOVE_RECURSE
  "CMakeFiles/fig07_learning_curve.dir/fig07_learning_curve.cc.o"
  "CMakeFiles/fig07_learning_curve.dir/fig07_learning_curve.cc.o.d"
  "fig07_learning_curve"
  "fig07_learning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
