# Empty dependencies file for fig07_learning_curve.
# This may be replaced when dependencies are built.
