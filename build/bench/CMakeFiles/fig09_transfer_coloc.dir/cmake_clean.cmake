file(REMOVE_RECURSE
  "CMakeFiles/fig09_transfer_coloc.dir/fig09_transfer_coloc.cc.o"
  "CMakeFiles/fig09_transfer_coloc.dir/fig09_transfer_coloc.cc.o.d"
  "fig09_transfer_coloc"
  "fig09_transfer_coloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_transfer_coloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
