# Empty compiler generated dependencies file for fig09_transfer_coloc.
# This may be replaced when dependencies are built.
