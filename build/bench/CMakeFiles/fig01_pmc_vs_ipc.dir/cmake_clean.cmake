file(REMOVE_RECURSE
  "CMakeFiles/fig01_pmc_vs_ipc.dir/fig01_pmc_vs_ipc.cc.o"
  "CMakeFiles/fig01_pmc_vs_ipc.dir/fig01_pmc_vs_ipc.cc.o.d"
  "fig01_pmc_vs_ipc"
  "fig01_pmc_vs_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pmc_vs_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
