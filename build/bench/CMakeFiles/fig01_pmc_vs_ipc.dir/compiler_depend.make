# Empty compiler generated dependencies file for fig01_pmc_vs_ipc.
# This may be replaced when dependencies are built.
