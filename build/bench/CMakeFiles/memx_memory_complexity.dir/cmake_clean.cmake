file(REMOVE_RECURSE
  "CMakeFiles/memx_memory_complexity.dir/memx_memory_complexity.cc.o"
  "CMakeFiles/memx_memory_complexity.dir/memx_memory_complexity.cc.o.d"
  "memx_memory_complexity"
  "memx_memory_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_memory_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
