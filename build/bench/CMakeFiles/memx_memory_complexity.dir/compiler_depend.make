# Empty compiler generated dependencies file for memx_memory_complexity.
# This may be replaced when dependencies are built.
