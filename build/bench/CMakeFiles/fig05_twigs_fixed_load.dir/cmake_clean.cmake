file(REMOVE_RECURSE
  "CMakeFiles/fig05_twigs_fixed_load.dir/fig05_twigs_fixed_load.cc.o"
  "CMakeFiles/fig05_twigs_fixed_load.dir/fig05_twigs_fixed_load.cc.o.d"
  "fig05_twigs_fixed_load"
  "fig05_twigs_fixed_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_twigs_fixed_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
