# Empty compiler generated dependencies file for fig05_twigs_fixed_load.
# This may be replaced when dependencies are built.
