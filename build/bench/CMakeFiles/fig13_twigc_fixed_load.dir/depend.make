# Empty dependencies file for fig13_twigc_fixed_load.
# This may be replaced when dependencies are built.
