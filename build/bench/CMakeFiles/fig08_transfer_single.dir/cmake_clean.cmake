file(REMOVE_RECURSE
  "CMakeFiles/fig08_transfer_single.dir/fig08_transfer_single.cc.o"
  "CMakeFiles/fig08_transfer_single.dir/fig08_transfer_single.cc.o.d"
  "fig08_transfer_single"
  "fig08_transfer_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_transfer_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
