# Empty compiler generated dependencies file for fig08_transfer_single.
# This may be replaced when dependencies are built.
