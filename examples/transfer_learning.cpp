/**
 * @file
 * Transfer-learning example (paper §IV): train Twig-S on one service,
 * then swap the service at runtime. Twig keeps the trunk weights,
 * re-initialises the specialised output layers and re-anneals epsilon
 * over a short window, adapting far faster than learning from scratch.
 *
 * Usage: transfer_learning [learn_steps] [adapt_steps]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/twig_manager.hh"
#include "harness/profiling.hh"
#include "harness/runner.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;

int
main(int argc, char **argv)
{
    const std::size_t learn_steps =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
    const std::size_t adapt_steps =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;

    const sim::MachineConfig machine;
    const auto maxima = services::calibrateCounterMaxima(machine);
    const auto masstree = services::masstree();
    const auto moses = services::moses();

    // Phase 1: learn to manage Masstree at 50 % load.
    sim::Server server(machine, 10);
    server.addService(masstree, std::make_unique<sim::FixedLoad>(
                                    masstree.maxLoadRps, 0.5));
    core::TwigManager twig(
        core::TwigConfig::fast(learn_steps), machine, maxima,
        {harness::makeTwigSpec(masstree, machine, 11)}, 12);

    harness::ExperimentRunner runner(server, twig);
    harness::RunOptions learn;
    learn.steps = learn_steps;
    learn.summaryWindow = learn_steps / 5;
    const auto before = runner.run(learn);
    std::printf("after learning %s: QoS guarantee %.1f%%, power "
                "%.1f W\n",
                masstree.name.c_str(),
                before.metrics.services[0].qosGuaranteePct,
                before.metrics.meanPowerW);

    // Phase 2: the operator deploys Moses in Masstree's slot. Twig
    // transfers: trunk kept, output layers re-initialised, epsilon
    // re-annealed over a short window.
    server.replaceService(0, moses, std::make_unique<sim::FixedLoad>(
                                        moses.maxLoadRps, 0.5));
    twig.transferService(0, harness::makeTwigSpec(moses, machine, 13),
                         /*reexplore_steps=*/adapt_steps / 6);
    std::printf("\nswapped %s -> %s (transfer learning, epsilon back "
                "to %.2f)\n",
                masstree.name.c_str(), moses.name.c_str(),
                twig.learner().epsilon());

    harness::RunOptions adapt;
    adapt.steps = adapt_steps;
    adapt.summaryWindow = adapt_steps / 4;
    std::size_t met = 0, n = 0;
    adapt.onStep = [&](std::size_t step,
                       const sim::ServerIntervalStats &stats) {
        met += stats.services[0].p99Ms <= moses.qosTargetMs ? 1 : 0;
        ++n;
        if ((step + 1) % (adapt_steps / 8) == 0) {
            std::printf("  adapt step %4zu  QoS so far %5.1f%%  p99 "
                        "%.1f ms\n",
                        step + 1, 100.0 * met / n,
                        stats.services[0].p99Ms);
        }
    };
    const auto after = runner.run(adapt);
    std::printf("\nafter %zu adaptation steps on %s: QoS guarantee "
                "%.1f%% (window), power %.1f W\n",
                adapt_steps, moses.name.c_str(),
                after.metrics.services[0].qosGuaranteePct,
                after.metrics.meanPowerW);
    std::printf("(a fresh agent needs its whole learning schedule to "
                "reach this; see bench/fig08)\n");
    return 0;
}
