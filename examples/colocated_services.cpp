/**
 * @file
 * Colocation example: Twig-C managing two latency-critical services
 * (Masstree + Moses) that contend for memory bandwidth and LLC
 * capacity — the scenario the paper's introduction motivates.
 *
 * Shows the full Twig-C flow: per-service power-model fitting, the
 * multi-agent learning loop, the resource-arbitration behaviour when
 * the agents' requests collide, and the final per-service QoS/energy
 * summary.
 *
 * Usage: colocated_services [steps]   (default 1500)
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/twig_manager.hh"
#include "harness/profiling.hh"
#include "harness/runner.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;

int
main(int argc, char **argv)
{
    const std::size_t steps =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;

    const sim::MachineConfig machine;
    const auto masstree = services::masstree();
    const auto moses = services::moses();
    std::printf("colocating %s (QoS %.0f ms) and %s (QoS %.0f ms) on "
                "%zu cores\n",
                masstree.name.c_str(), masstree.qosTargetMs,
                moses.name.c_str(), moses.qosTargetMs,
                machine.numCores);

    // Twig needs a fitted Eq. 2 power model per service (the reward's
    // power term) and the PMC normalisation ceilings.
    const auto maxima = services::calibrateCounterMaxima(machine);
    std::vector<core::TwigServiceSpec> specs = {
        harness::makeTwigSpec(masstree, machine, 1),
        harness::makeTwigSpec(moses, machine, 2),
    };

    // Masstree at 30 % of max, Moses at 50 %: enough joint pressure
    // that the agents must coordinate through the shared trunk.
    sim::Server server(machine, 3);
    server.addService(masstree, std::make_unique<sim::FixedLoad>(
                                    masstree.maxLoadRps, 0.3));
    server.addService(moses, std::make_unique<sim::FixedLoad>(
                                 moses.maxLoadRps, 0.5));

    core::TwigManager twig(core::TwigConfig::fast(steps), machine,
                           maxima, std::move(specs), 4);

    harness::ExperimentRunner runner(server, twig);
    harness::RunOptions opt;
    opt.steps = steps;
    opt.summaryWindow = steps / 5;
    opt.onStep = [&](std::size_t step,
                     const sim::ServerIntervalStats &stats) {
        if ((step + 1) % (steps / 8) == 0) {
            std::printf("  step %5zu  masstree %5.1f ms (%4.1f cores) "
                        "| moses %5.1f ms (%4.1f cores) | %5.1f W\n",
                        step + 1, stats.services[0].p99Ms,
                        stats.services[0].effectiveCores,
                        stats.services[1].p99Ms,
                        stats.services[1].effectiveCores,
                        stats.socketPowerW);
        }
    };

    const auto result = runner.run(opt);
    std::printf("\nover the last %zu steps:\n",
                result.metrics.windowSteps);
    for (const auto &svc : result.metrics.services) {
        std::printf("  %-9s QoS guarantee %5.1f%%  mean tardiness "
                    "%.2f\n",
                    svc.name.c_str(), svc.qosGuaranteePct,
                    svc.meanTardiness);
    }
    std::printf("  socket power %.1f W\n", result.metrics.meanPowerW);
    return 0;
}
