/**
 * @file
 * Quickstart: manage a single latency-critical service (Masstree at
 * 50 % load) with Twig-S on the simulated server.
 *
 * Walks through the full public API:
 *   1. describe the machine and pick a service from the catalogue;
 *   2. calibrate the PMC normalisation ceilings (microbenchmarks);
 *   3. profile and fit the per-service power model (paper Eq. 2);
 *   4. run the Twig-S learning loop and watch the QoS guarantee rise
 *      and the energy drop as epsilon anneals.
 *
 * Usage: quickstart [steps]   (default 1500)
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/twig_manager.hh"
#include "harness/profiling.hh"
#include "harness/runner.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;

int
main(int argc, char **argv)
{
    const std::size_t steps =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;

    // 1. The machine (defaults mirror one Xeon E5-2695v4 socket) and
    //    the service under management.
    const sim::MachineConfig machine;
    const sim::ServiceProfile service = services::masstree();
    std::printf("service %s: QoS target %.1f ms, max load %.0f RPS\n",
                service.name.c_str(), service.qosTargetMs,
                service.maxLoadRps);

    // 2. PMC normalisation ceilings from the calibration
    //    microbenchmarks (cpu-max, branchy, stream).
    const sim::PmcVector maxima =
        services::calibrateCounterMaxima(machine);

    // 3. Fit the Eq. 2 power model from a profiling campaign
    //    (random grid search + 5-fold cross-validation).
    const core::TwigServiceSpec spec =
        harness::makeTwigSpec(service, machine, /*seed=*/1);
    std::printf("power model: kappa=%.2f sigma=%.2f omega=%.2f\n",
                spec.powerModel.kappa(), spec.powerModel.sigma(),
                spec.powerModel.omega());

    // 4. Host the service at 50 % load and let Twig-S manage it.
    sim::Server server(machine, /*seed=*/2);
    server.addService(service, std::make_unique<sim::FixedLoad>(
                                   service.maxLoadRps, 0.5));

    core::TwigManager twig(core::TwigConfig::fast(steps), machine, maxima,
                           {spec}, /*seed=*/3);

    harness::ExperimentRunner runner(server, twig);
    harness::RunOptions options;
    options.steps = steps;
    options.summaryWindow = steps / 5;
    options.onStep = [&](std::size_t step,
                         const sim::ServerIntervalStats &stats) {
        if ((step + 1) % (steps / 10) == 0) {
            std::printf("  step %5zu  eps=%.2f  p99=%7.1f ms  "
                        "power=%5.1f W  cores=%4.1f @ %.1f GHz\n",
                        step + 1, twig.learner().epsilon(),
                        stats.services[0].p99Ms, stats.socketPowerW,
                        stats.services[0].effectiveCores,
                        stats.services[0].freqGhz);
        }
    };

    const auto result = runner.run(options);
    const auto &m = result.metrics.services[0];
    std::printf("\nover the last %zu steps:\n", result.metrics.windowSteps);
    std::printf("  QoS guarantee : %.1f %%\n", m.qosGuaranteePct);
    std::printf("  mean tardiness: %.2f\n", m.meanTardiness);
    std::printf("  mean power    : %.1f W\n", result.metrics.meanPowerW);
    std::printf("  energy        : %.0f J\n", result.metrics.energyJoules);
    return 0;
}
