/**
 * @file
 * Custom-service example: Twig is service-agnostic — to manage a new
 * workload you only describe its simulated behaviour (service time,
 * memory traffic, cache footprint, instruction mix) and give Twig its
 * QoS target; no Twig code changes.
 *
 * This example models a hypothetical gRPC API gateway, derives its
 * capacity and a QoS target with the paper's methodology (load sweep
 * at full allocation), then lets Twig-S manage it under a diurnal
 * load.
 */

#include <cstdio>
#include <memory>

#include "core/mapper.hh"
#include "core/twig_manager.hh"
#include "harness/profiling.hh"
#include "harness/runner.hh"
#include "services/microbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"
#include "stats/summary.hh"

using namespace twig;

namespace {

/** Describe the new workload to the simulator. */
sim::ServiceProfile
apiGateway()
{
    sim::ServiceProfile p;
    p.name = "api-gateway";
    p.maxLoadRps = 3200.0;      // placeholder; re-derived below
    p.baseServiceTimeMs = 5.0;  // JSON parse + routing + auth
    p.serviceTimeCv = 0.8;
    p.freqExponent = 0.9;
    p.memTrafficPerReqMB = 3.0;
    p.bwSensitivity = 0.8;
    p.llcFootprintMB = 14.0;
    p.llcSensitivity = 0.4;
    p.instructionsPerReqM = 12.0;
    p.uopsPerInstr = 1.25;
    p.branchFraction = 0.22;
    p.branchMissRate = 0.018;
    p.l1dPerInstr = 0.40;
    p.l1iPerInstr = 0.09;
    p.llcAccessPerInstr = 0.022;
    p.llcBaseMissRate = 0.45;
    p.timeoutMs = 300.0;
    p.qosTargetMs = 50.0; // placeholder; re-derived below
    return p;
}

} // namespace

int
main()
{
    const sim::MachineConfig machine;
    auto profile = apiGateway();

    // 1. Derive capacity and QoS target with the paper's methodology:
    //    sweep the load at full allocation until latency blows up; set
    //    the target above the p99 observed near the knee.
    core::Mapper mapper(machine);
    const auto full = mapper.map({core::ResourceRequest{
        machine.numCores, machine.dvfs.maxIndex()}});
    const double capacity = 0.9 * static_cast<double>(machine.numCores) /
        (profile.baseServiceTimeMs * 1e-3);
    profile.maxLoadRps = capacity;

    sim::Server probe(machine, 21);
    probe.addService(profile, std::make_unique<sim::FixedLoad>(
                                  profile.maxLoadRps, 0.9));
    stats::PercentileEstimator p99s;
    for (int i = 0; i < 60; ++i) {
        const auto s = probe.runInterval({full});
        if (i >= 5)
            p99s.add(s.services[0].p99Ms);
    }
    profile.qosTargetMs = p99s.percentile(99.0) * 1.3;
    profile.timeoutMs = profile.qosTargetMs * 6.0;
    std::printf("%s: derived max load %.0f RPS, QoS target %.1f ms\n",
                profile.name.c_str(), profile.maxLoadRps,
                profile.qosTargetMs);

    // 2. Fit its Eq. 2 power model and hand everything to Twig.
    const auto maxima = services::calibrateCounterMaxima(machine);
    const auto spec = harness::makeTwigSpec(profile, machine, 22);

    // 3. Manage it under a diurnal load (a day = 400 steps here).
    const std::size_t steps = 1600;
    sim::Server server(machine, 23);
    server.addService(profile,
                      std::make_unique<sim::DiurnalLoad>(
                          profile.maxLoadRps, 0.2, 0.85, 400));
    core::TwigManager twig(core::TwigConfig::fast(steps), machine,
                           maxima, {spec}, 24);
    harness::ExperimentRunner runner(server, twig);
    harness::RunOptions opt;
    opt.steps = steps;
    opt.summaryWindow = 400; // one full diurnal period
    opt.onStep = [&](std::size_t step,
                     const sim::ServerIntervalStats &stats) {
        if ((step + 1) % 200 == 0) {
            std::printf("  step %4zu  load %4.0f%%  p99 %6.1f ms  "
                        "cores %4.1f @ %.1f GHz  %5.1f W\n",
                        step + 1,
                        100.0 * stats.services[0].offeredRps /
                            profile.maxLoadRps,
                        stats.services[0].p99Ms,
                        stats.services[0].effectiveCores,
                        stats.services[0].freqGhz,
                        stats.socketPowerW);
        }
    };
    const auto result = runner.run(opt);
    std::printf("\nlast diurnal period: QoS guarantee %.1f%%, mean "
                "power %.1f W\n",
                result.metrics.services[0].qosGuaranteePct,
                result.metrics.meanPowerW);
    return 0;
}
