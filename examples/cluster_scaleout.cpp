/**
 * @file
 * Fleet example: four replicas of Masstree behind a front-end router,
 * on a heterogeneous fleet (two full-size nodes, two 6-core nodes).
 *
 * Runs the same diurnal fleet load through each routing policy and
 * compares fleet tail latency: a static equal split overloads the
 * small nodes at peak, weighted round-robin fixes that with capacity
 * weights, and power-of-two-choices additionally reacts to observed
 * tail latency. Fleet p99 comes from merging the per-node latency
 * histograms (stats::Histogram::merge) — an exact fleet-wide
 * quantile, not an average of per-node quantiles.
 *
 * Usage: cluster_scaleout [steps]   (default 160)
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/static_manager.hh"
#include "cluster/cluster_manager.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"

using namespace twig;

int
main(int argc, char **argv)
{
    const std::size_t steps =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 160;

    const auto masstree = services::masstree();
    const sim::MachineConfig big;
    sim::MachineConfig small = big;
    small.numCores = 6;
    const std::vector<sim::MachineConfig> machines = {big, small, big,
                                                      small};

    // Fleet capacity relative to one full-size node; the diurnal fleet
    // load peaks at half of it.
    double capacity = 0.0;
    for (const auto &m : machines)
        capacity += static_cast<double>(m.numCores) /
            static_cast<double>(big.numCores);
    std::printf("%zu-node fleet (%zu+%zu+%zu+%zu cores) serving %s "
                "(QoS %.0f ms)\n\n",
                machines.size(), machines[0].numCores,
                machines[1].numCores, machines[2].numCores,
                machines[3].numCores, masstree.name.c_str(),
                masstree.qosTargetMs);

    // Every node runs the no-intelligence baseline manager so the
    // comparison isolates the routing policy.
    const cluster::ClusterManager::ManagerFactory static_nodes =
        [](const sim::MachineConfig &machine,
           const std::vector<sim::ServiceProfile> &,
           std::uint64_t) -> std::unique_ptr<core::TaskManager> {
        return std::make_unique<baselines::StaticManager>(machine);
    };

    std::printf("%-12s %14s %8s %10s\n", "routing", "fleet p99 (ms)",
                "QoS %", "power (W)");
    for (const char *policy : {"static", "wrr", "p2c-latency"}) {
        cluster::ClusterConfig cfg;
        cfg.router.policy = cluster::routingPolicyByName(policy);

        std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
        loads.push_back(std::make_unique<sim::DiurnalLoad>(
            masstree.maxLoadRps * capacity, 0.2, 0.5, steps / 2));

        cluster::ClusterManager fleet(cfg, {masstree},
                                      std::move(loads), /*seed=*/42);
        for (const auto &machine : machines)
            fleet.addNode(machine, static_nodes);

        const auto result = fleet.run(steps, steps / 2);
        const auto &m = result.metrics;
        std::printf("%-12s %14.2f %8.1f %10.1f\n", policy,
                    m.windowP99Ms[0], m.qosGuaranteePct[0],
                    m.meanPowerW);
    }

    std::printf("\ncapacity-aware routing keeps the small nodes inside "
                "their envelope; the\nlatency-weighted router does the "
                "same from feedback alone.\n");
    return 0;
}
