#!/usr/bin/env bash
# Loopback smoke for the live serving front-end: start twig_serve on
# an ephemeral port, fire twig_loadgen at it, and check that both
# sides agree and shut down cleanly.
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR]
#
# Asserts, end to end: the daemon binds and prints its port; the load
# generator connects, gets every offered request acked, and exits 0;
# the daemon accepts the same number of requests, writes a final
# checksummed checkpoint frame, and reports a clean shutdown after
# SIGTERM (exit 0) — the graceful-shutdown contract under a real
# signal, not just the in-process test.
set -u

cd "$(dirname "$0")/.."
build_dir=${1:-build}
serve="$build_dir/tools/twig_serve"
loadgen="$build_dir/tools/twig_loadgen"

for exe in "$serve" "$loadgen"; do
    if [[ ! -x "$exe" ]]; then
        echo "serve_smoke: $exe not found -- build the project first" >&2
        exit 1
    fi
done

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
serve_log="$workdir/serve.log"
ckpt="$workdir/final.ckpt"

"$serve" --scenario scenarios/serve.json --interval-ms 20 \
    --final-checkpoint "$ckpt" >"$serve_log" 2>&1 &
serve_pid=$!

# Wait for the daemon to report its (ephemeral) port. Generous budget:
# fleet construction is slow under sanitizers.
port=""
for _ in $(seq 1 300); do
    port=$(grep -oE 'listening on 127\.0\.0\.1:[0-9]+' "$serve_log" |
        grep -oE '[0-9]+$' || true)
    [[ -n "$port" ]] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "serve_smoke: daemon died before listening" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$port" ]]; then
    echo "serve_smoke: daemon never reported a port" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null
    exit 1
fi
echo "serve_smoke: daemon up on port $port"

if ! loadgen_out=$("$loadgen" --port "$port" --rps 100000 \
    --connections 4 --duration-s 1 2>&1); then
    printf '%s\n' "$loadgen_out"
    echo "serve_smoke: FAIL (twig_loadgen exited non-zero)" >&2
    kill "$serve_pid" 2>/dev/null
    exit 1
fi
printf '%s\n' "$loadgen_out"

offered=$(grep -oE 'offered [0-9]+' <<<"$loadgen_out" | grep -oE '[0-9]+')
acked=$(grep -oE 'acked +[0-9]+' <<<"$loadgen_out" | grep -oE '[0-9]+')
if [[ -z "$offered" || "$offered" -eq 0 || "$offered" != "$acked" ]]; then
    echo "serve_smoke: FAIL (offered=$offered acked=$acked)" >&2
    kill "$serve_pid" 2>/dev/null
    exit 1
fi

# Graceful shutdown under a real signal.
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "serve_smoke: FAIL (daemon exited non-zero on SIGTERM)" >&2
    cat "$serve_log" >&2
    exit 1
fi
cat "$serve_log"

if ! grep -q "clean shutdown" "$serve_log"; then
    echo "serve_smoke: FAIL (no clean-shutdown line)" >&2
    exit 1
fi
if ! grep -qE "accepted $offered requests" "$serve_log"; then
    echo "serve_smoke: FAIL (daemon did not accept all $offered offered requests)" >&2
    exit 1
fi
if [[ ! -s "$ckpt" ]]; then
    echo "serve_smoke: FAIL (no final checkpoint frame written)" >&2
    exit 1
fi
echo "serve_smoke: OK (offered=$offered acked=$acked, checkpoint $(wc -c <"$ckpt") bytes)"
