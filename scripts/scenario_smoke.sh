#!/usr/bin/env bash
# Smoke-run every shipped scenario file at reduced step counts.
#
# Usage: scripts/scenario_smoke.sh [BUILD_DIR] [STEPS]
#
# Each scenarios/*.json is run through twig_sim --scenario (twig_sim
# executes both single-node and cluster topologies), overriding the
# file's schedule with a small --steps so the whole sweep finishes in
# seconds. A run fails the smoke if it exits non-zero or if its output
# carries no metrics (no QoS line). Fault scenarios (faults_*.json)
# additionally must report a fault-event summary, proving the schedule
# actually fired within the reduced step budget.
set -u

cd "$(dirname "$0")/.."
build_dir=${1:-build}
steps=${2:-60}
sim="$build_dir/tools/twig_sim"

if [[ ! -x "$sim" ]]; then
    echo "scenario_smoke: $sim not found -- build the project first" >&2
    exit 1
fi

failures=0
for scenario in scenarios/*.json; do
    printf '== %s (steps=%s)\n' "$scenario" "$steps"
    if ! out=$("$sim" --scenario "$scenario" --steps "$steps" 2>&1); then
        printf '%s\n' "$out"
        echo "scenario_smoke: FAIL $scenario (non-zero exit)" >&2
        failures=$((failures + 1))
        continue
    fi
    printf '%s\n' "$out"
    if ! grep -q "QoS" <<<"$out"; then
        echo "scenario_smoke: FAIL $scenario (no metrics in output)" >&2
        failures=$((failures + 1))
        continue
    fi
    case "$scenario" in
    scenarios/faults_*.json)
        if ! grep -Eq 'fault events: [1-9]' <<<"$out"; then
            echo "scenario_smoke: FAIL $scenario (fault schedule did not fire)" >&2
            failures=$((failures + 1))
        fi
        ;;
    scenarios/autoscale_*.json)
        if ! grep -Eq 'scale events: [1-9]' <<<"$out"; then
            echo "scenario_smoke: FAIL $scenario (autoscaler never acted)" >&2
            failures=$((failures + 1))
        fi
        ;;
    scenarios/fleet_mixed_gen.json)
        if ! grep -Eq 'fleet bill \$[0-9]' <<<"$out"; then
            echo "scenario_smoke: FAIL $scenario (no cost-model bill in output)" >&2
            failures=$((failures + 1))
        fi
        ;;
    esac
done

if [[ $failures -gt 0 ]]; then
    echo "scenario_smoke: $failures scenario(s) failed" >&2
    exit 1
fi
echo "scenario_smoke: all scenarios OK"
