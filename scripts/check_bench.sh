#!/usr/bin/env bash
# Gate the simulator throughput bench artifact.
#
# Usage: scripts/check_bench.sh [BENCH_JSON]
#
# Reads the BENCH_sim.json produced by fig_sim_throughput (and
# augmented by fig_dispatch) and fails when any config reports
# checksums_match: false -- the calendar-queue dispatch diverged from
# the reference path -- or optimized_allocs_per_step > 0 -- the hot
# loop allocated. Both are hard invariants of the optimized simulator,
# so CI runs this after bench_smoke instead of trusting the benches'
# own exit codes alone (the artifact is also what gets uploaded, so
# the gate checks exactly what a reader would download).
set -u

cd "$(dirname "$0")/.."
bench_json=${1:-build/bench/BENCH_sim.json}

if [[ ! -f "$bench_json" ]]; then
    echo "check_bench: $bench_json not found -- run bench_smoke first" >&2
    exit 1
fi

python3 - "$bench_json" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    root = json.load(f)

configs = root.get("configs", [])
if not configs:
    print(f"check_bench: {path} has no configs", file=sys.stderr)
    sys.exit(1)

failures = 0
for cfg in configs:
    name = cfg.get("name", "?")
    match = cfg.get("checksums_match")
    allocs = cfg.get("optimized_allocs_per_step")
    if match is not True:
        print(f"check_bench: FAIL {name}: checksums_match is {match!r}",
              file=sys.stderr)
        failures += 1
    if not isinstance(allocs, (int, float)) or allocs > 0:
        print(f"check_bench: FAIL {name}: "
              f"optimized_allocs_per_step is {allocs!r}",
              file=sys.stderr)
        failures += 1
    speed = cfg.get("optimized_steps_per_sec")
    print(f"check_bench: {name}: checksums_match={match} "
          f"allocs/step={allocs} steps/s={speed}")

cells = root.get("dispatch_microbench", [])
for cell in cells:
    name = f"{cell.get('cores')}c/{cell.get('pattern')}"
    if cell.get("checksums_match") is not True:
        print(f"check_bench: FAIL dispatch cell {name}: checksum mismatch",
              file=sys.stderr)
        failures += 1
print(f"check_bench: {len(cells)} dispatch microbench cells checked")

if failures:
    print(f"check_bench: {failures} invariant violation(s)", file=sys.stderr)
    sys.exit(1)
print("check_bench: all invariants hold")
EOF
