#!/usr/bin/env bash
# Gate the bench artifacts on their hard invariants.
#
# Usage: scripts/check_bench.sh [BENCH_SIM_JSON] [BENCH_CLUSTER_JSON] \
#                               [BENCH_AUTOSCALE_JSON]
#
# BENCH_sim.json (fig_sim_throughput, augmented by fig_dispatch): fails
# when any config reports checksums_match: false -- the calendar-queue
# dispatch diverged from the reference path -- or
# optimized_allocs_per_step > 0 -- the hot loop allocated.
#
# BENCH_cluster.json (fig12_cluster_scaleout): fails when any scale-out
# row reports bitidentical_jobs: false (the fleet's metrics depended on
# the thread count), batched_matches_pernode: false (the batched cohort
# GEMM diverged from per-node forwards) or domains1_matches_flat: false
# (a one-domain sharded fleet diverged from the pre-refactor flat
# control path). The cluster artifact is skipped with a notice when
# absent (a sim-only bench run) -- pass its path to require it.
#
# BENCH_autoscale.json (fig_autoscale): fails when any acceptance check
# in the artifact's checks{} block is false -- the elastic fleet must
# hold QoS within 5 points of static max provisioning at a strictly
# lower bill and lower cost-normalized power, the flash-crowd row must
# actually scale out, the mixed-generation fleet must be billed, and
# every row must replay bit-identically across --jobs counts. Skipped
# with a notice when absent, like the cluster artifact.
#
# These are hard invariants, so CI runs this after bench_smoke instead
# of trusting the benches' own exit codes alone (the artifacts are also
# what gets uploaded, so the gate checks exactly what a reader would
# download).
set -u

cd "$(dirname "$0")/.."
bench_json=${1:-build/bench/BENCH_sim.json}
cluster_json=${2:-build/bench/BENCH_cluster.json}
autoscale_json=${3:-build/bench/BENCH_autoscale.json}

if [[ ! -f "$bench_json" ]]; then
    echo "check_bench: $bench_json not found -- run bench_smoke first" >&2
    exit 1
fi

python3 - "$bench_json" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    root = json.load(f)

configs = root.get("configs", [])
if not configs:
    print(f"check_bench: {path} has no configs", file=sys.stderr)
    sys.exit(1)

failures = 0
for cfg in configs:
    name = cfg.get("name", "?")
    match = cfg.get("checksums_match")
    allocs = cfg.get("optimized_allocs_per_step")
    if match is not True:
        print(f"check_bench: FAIL {name}: checksums_match is {match!r}",
              file=sys.stderr)
        failures += 1
    if not isinstance(allocs, (int, float)) or allocs > 0:
        print(f"check_bench: FAIL {name}: "
              f"optimized_allocs_per_step is {allocs!r}",
              file=sys.stderr)
        failures += 1
    speed = cfg.get("optimized_steps_per_sec")
    print(f"check_bench: {name}: checksums_match={match} "
          f"allocs/step={allocs} steps/s={speed}")

cells = root.get("dispatch_microbench", [])
for cell in cells:
    name = f"{cell.get('cores')}c/{cell.get('pattern')}"
    if cell.get("checksums_match") is not True:
        print(f"check_bench: FAIL dispatch cell {name}: checksum mismatch",
              file=sys.stderr)
        failures += 1
print(f"check_bench: {len(cells)} dispatch microbench cells checked")

if failures:
    print(f"check_bench: {failures} invariant violation(s)", file=sys.stderr)
    sys.exit(1)
print("check_bench: sim invariants hold")
EOF
sim_status=$?
if [[ $sim_status -ne 0 ]]; then
    exit "$sim_status"
fi

if [[ ! -f "$cluster_json" ]]; then
    echo "check_bench: $cluster_json not found -- skipping cluster invariants"
    exit 0
fi

python3 - "$cluster_json" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    root = json.load(f)

rows = root.get("scale_out", [])
if not rows:
    print(f"check_bench: {path} has no scale_out rows", file=sys.stderr)
    sys.exit(1)

failures = 0
flat_checked = 0
for row in rows:
    name = f"{row.get('nodes')}n/{row.get('domains')}d"
    if row.get("bitidentical_jobs") is not True:
        print(f"check_bench: FAIL scale-out {name}: fleet metrics "
              f"depend on --jobs (bitidentical_jobs is "
              f"{row.get('bitidentical_jobs')!r})", file=sys.stderr)
        failures += 1
    if row.get("batched_matches_pernode") is not True:
        print(f"check_bench: FAIL scale-out {name}: batched inference "
              f"diverged from per-node forwards", file=sys.stderr)
        failures += 1
    if "domains1_matches_flat" in row:
        flat_checked += 1
        if row["domains1_matches_flat"] is not True:
            print(f"check_bench: FAIL scale-out {name}: one-domain "
                  f"sharded fleet diverged from the flat control path",
                  file=sys.stderr)
            failures += 1
    print(f"check_bench: scale-out {name}: "
          f"bitidentical_jobs={row.get('bitidentical_jobs')} "
          f"batched=pernode={row.get('batched_matches_pernode')} "
          f"fwd_speedup={row.get('forward_speedup')}")

if flat_checked == 0:
    print("check_bench: FAIL no scale-out row carries the "
          "domains1_matches_flat A/B check", file=sys.stderr)
    failures += 1

if failures:
    print(f"check_bench: {failures} invariant violation(s)", file=sys.stderr)
    sys.exit(1)
print(f"check_bench: cluster invariants hold ({len(rows)} scale-out "
      f"rows, {flat_checked} flat A/B)")
EOF
cluster_status=$?
if [[ $cluster_status -ne 0 ]]; then
    exit "$cluster_status"
fi

if [[ ! -f "$autoscale_json" ]]; then
    echo "check_bench: $autoscale_json not found -- skipping autoscale invariants"
    exit 0
fi

python3 - "$autoscale_json" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    root = json.load(f)

runs = root.get("runs", [])
if not runs:
    print(f"check_bench: {path} has no runs", file=sys.stderr)
    sys.exit(1)

failures = 0
for run in runs:
    name = run.get("fleet", "?")
    if run.get("replay_bit_identical") is not True:
        print(f"check_bench: FAIL autoscale {name}: run is not "
              f"bit-identical across --jobs counts", file=sys.stderr)
        failures += 1
    print(f"check_bench: autoscale {name}: "
          f"qos={run.get('qos_pct')} dollars={run.get('dollars')} "
          f"cost_norm_w={run.get('cost_normalized_power_w')} "
          f"bitidentical={run.get('replay_bit_identical')}")

checks = root.get("checks", {})
required = [
    "qos_within_5pts_of_static",
    "cheaper_than_static_max",
    "cost_normalized_power_below_static_max",
    "flashcrowd_scaled_out",
    "mixed_gen_billed",
    "replay_bit_identical",
]
for key in required:
    if checks.get(key) is not True:
        print(f"check_bench: FAIL autoscale check {key} is "
              f"{checks.get(key)!r}", file=sys.stderr)
        failures += 1

if failures:
    print(f"check_bench: {failures} invariant violation(s)", file=sys.stderr)
    sys.exit(1)
print(f"check_bench: autoscale invariants hold ({len(runs)} fleet rows, "
      f"{len(required)} acceptance checks)")
EOF
