/** @file Unit tests for the multi-agent branching dueling Q-network. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hh"
#include "common/rng.hh"
#include "nn/bdq.hh"

using namespace twig::nn;
using twig::common::Rng;

namespace {

BdqConfig
smallConfig(std::size_t agents = 2)
{
    BdqConfig cfg;
    cfg.numAgents = agents;
    cfg.stateDimPerAgent = 4;
    cfg.trunkHidden = {16, 12};
    cfg.agentHeadHidden = 8;
    cfg.branchHidden = 8;
    cfg.branchActions = {5, 3};
    cfg.dropoutRate = 0.0f;
    return cfg;
}

Matrix
randomBatch(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix x(rows, cols);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.raw()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return x;
}

} // namespace

TEST(Bdq, OutputShapes)
{
    Rng rng(1);
    const auto cfg = smallConfig(3);
    MultiAgentBdq net(cfg, rng);
    const Matrix x = randomBatch(7, cfg.inputDim(), rng);
    BdqOutput out;
    net.forward(x, out, false);
    ASSERT_EQ(out.q.size(), 3u);
    for (std::size_t k = 0; k < 3; ++k) {
        ASSERT_EQ(out.q[k].size(), 2u);
        EXPECT_EQ(out.q[k][0].rows(), 7u);
        EXPECT_EQ(out.q[k][0].cols(), 5u);
        EXPECT_EQ(out.q[k][1].cols(), 3u);
    }
}

TEST(Bdq, DuelingIdentityBranchMeansEqualStateValue)
{
    // Q_{k,d}(a) = V_k + A_d(a) - mean(A_d), so mean_a Q_{k,d}(a) = V_k
    // for every branch: the per-branch means must agree across branches.
    Rng rng(2);
    const auto cfg = smallConfig(2);
    MultiAgentBdq net(cfg, rng);
    const Matrix x = randomBatch(4, cfg.inputDim(), rng);
    BdqOutput out;
    net.forward(x, out, false);
    for (std::size_t k = 0; k < 2; ++k) {
        for (std::size_t i = 0; i < 4; ++i) {
            double mean0 = 0.0, mean1 = 0.0;
            for (std::size_t a = 0; a < 5; ++a)
                mean0 += out.q[k][0](i, a);
            mean0 /= 5.0;
            for (std::size_t a = 0; a < 3; ++a)
                mean1 += out.q[k][1](i, a);
            mean1 /= 3.0;
            EXPECT_NEAR(mean0, mean1, 1e-4);
        }
    }
}

TEST(Bdq, AgentsProduceDistinctValues)
{
    Rng rng(3);
    const auto cfg = smallConfig(2);
    MultiAgentBdq net(cfg, rng);
    const Matrix x = randomBatch(1, cfg.inputDim(), rng);
    BdqOutput out;
    net.forward(x, out, false);
    // Different agent heads -> different Q surfaces (with random init).
    bool any_diff = false;
    for (std::size_t a = 0; a < 5; ++a)
        any_diff |=
            std::abs(out.q[0][0](0, a) - out.q[1][0](0, a)) > 1e-6;
    EXPECT_TRUE(any_diff);
}

TEST(Bdq, GreedyActionsMatchArgmax)
{
    Rng rng(4);
    const auto cfg = smallConfig(2);
    MultiAgentBdq net(cfg, rng);
    std::vector<float> state(cfg.inputDim());
    for (auto &v : state)
        v = static_cast<float>(rng.uniform(0.0, 1.0));

    Matrix x(1, state.size());
    std::copy(state.begin(), state.end(), x.rowPtr(0));
    BdqOutput out;
    net.forward(x, out, false);

    const auto actions = net.greedyActions(state);
    ASSERT_EQ(actions.size(), 2u);
    for (std::size_t k = 0; k < 2; ++k) {
        for (std::size_t d = 0; d < 2; ++d) {
            const Matrix &q = out.q[k][d];
            for (std::size_t a = 0; a < q.cols(); ++a)
                EXPECT_LE(q(0, a), q(0, actions[k][d]) + 1e-6f);
        }
    }
}

TEST(Bdq, GreedyActionsRowsMatchPerRowGreedyActionsExactly)
{
    // The cluster's batched-inference contract: one forward over a
    // [batch x inputDim] matrix must produce, for every row, exactly
    // the actions (and Q-values) the per-sample path picks — not
    // approximately, bitwise. Each GEMM output element accumulates
    // over the reduction dimension in a fixed order independent of the
    // batch size, and the argmax tie-break (first maximum) matches.
    Rng rng(11);
    const auto cfg = smallConfig(3);
    MultiAgentBdq net(cfg, rng);
    const std::size_t batch = 16;
    const Matrix x = randomBatch(batch, cfg.inputDim(), rng);

    BdqOutput batched_out;
    std::vector<std::vector<BranchActions>> batched;
    net.greedyActionsRows(x, batched_out, batched);
    ASSERT_EQ(batched.size(), batch);

    for (std::size_t i = 0; i < batch; ++i) {
        std::vector<float> state(x.rowPtr(i), x.rowPtr(i) + x.cols());
        EXPECT_EQ(batched[i], net.greedyActions(state))
            << "row " << i;

        Matrix single(1, state.size());
        std::copy(state.begin(), state.end(), single.rowPtr(0));
        BdqOutput single_out;
        net.forward(single, single_out, false);
        for (std::size_t k = 0; k < cfg.numAgents; ++k) {
            for (std::size_t d = 0; d < cfg.branchActions.size(); ++d) {
                for (std::size_t a = 0;
                     a < cfg.branchActions[d]; ++a) {
                    // Bitwise equality of every Q-value.
                    EXPECT_EQ(batched_out.q[k][d](i, a),
                              single_out.q[k][d](0, a))
                        << "row " << i << " agent " << k << " branch "
                        << d << " action " << a;
                }
            }
        }
    }
}

TEST(Bdq, GreedyActionsRowsRejectsWrongWidth)
{
    Rng rng(12);
    MultiAgentBdq net(smallConfig(2), rng);
    Matrix bad(3, 5); // inputDim is 8
    BdqOutput out;
    std::vector<std::vector<BranchActions>> actions;
    EXPECT_THROW(net.greedyActionsRows(bad, out, actions),
                 twig::common::FatalError);
}

TEST(Bdq, SupervisedTrainingConverges)
{
    // Regress fixed random Q targets; exercises the full backward path
    // (dueling combine, shared advantage modules, trunk rescaling).
    Rng rng(5);
    auto cfg = smallConfig(2);
    cfg.adam.learningRate = 0.01f;
    MultiAgentBdq net(cfg, rng);

    const Matrix x = randomBatch(8, cfg.inputDim(), rng);
    std::vector<std::vector<Matrix>> target(2);
    for (std::size_t k = 0; k < 2; ++k) {
        for (std::size_t d = 0; d < 2; ++d) {
            target[k].push_back(
                randomBatch(8, cfg.branchActions[d], rng));
        }
    }

    double first = 0.0, last = 0.0;
    for (int it = 0; it < 500; ++it) {
        BdqOutput out;
        net.forward(x, out, true);
        std::vector<std::vector<Matrix>> dq(2);
        double loss = 0.0;
        for (std::size_t k = 0; k < 2; ++k) {
            for (std::size_t d = 0; d < 2; ++d) {
                Matrix g(8, cfg.branchActions[d]);
                for (std::size_t i = 0; i < g.size(); ++i) {
                    const float e = out.q[k][d].raw()[i] -
                        target[k][d].raw()[i];
                    loss += e * e;
                    g.raw()[i] = 2.0f * e / 8.0f;
                }
                dq[k].push_back(std::move(g));
            }
        }
        if (it == 0)
            first = loss;
        last = loss;
        net.backward(dq);
        net.adamStep();
    }
    // The dueling structure cannot express arbitrary targets exactly
    // (branch means are tied to V), but the error must shrink a lot.
    EXPECT_LT(last, 0.3 * first);
}

TEST(Bdq, CopyParamsMakesNetworksIdentical)
{
    Rng rng(6);
    const auto cfg = smallConfig(2);
    MultiAgentBdq a(cfg, rng), b(cfg, rng);
    b.copyParamsFrom(a);
    std::vector<float> state(cfg.inputDim(), 0.3f);
    const auto qa = a.greedyActions(state);
    const auto qb = b.greedyActions(state);
    EXPECT_EQ(qa, qb);

    Matrix x(2, cfg.inputDim(), 0.25f);
    BdqOutput oa, ob;
    a.forward(x, oa, false);
    b.forward(x, ob, false);
    for (std::size_t k = 0; k < 2; ++k)
        for (std::size_t d = 0; d < 2; ++d)
            for (std::size_t i = 0; i < oa.q[k][d].size(); ++i)
                EXPECT_FLOAT_EQ(oa.q[k][d].raw()[i],
                                ob.q[k][d].raw()[i]);
}

TEST(Bdq, SaveLoadRoundTrip)
{
    Rng rng(7);
    const auto cfg = smallConfig(1);
    MultiAgentBdq a(cfg, rng), b(cfg, rng);
    std::stringstream ss;
    a.save(ss);
    b.load(ss);
    Matrix x(3, cfg.inputDim(), -0.4f);
    BdqOutput oa, ob;
    a.forward(x, oa, false);
    b.forward(x, ob, false);
    for (std::size_t i = 0; i < oa.q[0][0].size(); ++i)
        EXPECT_FLOAT_EQ(oa.q[0][0].raw()[i], ob.q[0][0].raw()[i]);
}

TEST(Bdq, TransferReinitChangesOutputsOnly)
{
    Rng rng(8);
    const auto cfg = smallConfig(2);
    MultiAgentBdq net(cfg, rng);
    Matrix x(1, cfg.inputDim(), 0.5f);
    BdqOutput before;
    net.forward(x, before, false);

    Rng reinit_rng(99);
    net.reinitializeOutputLayers(reinit_rng);
    BdqOutput after;
    net.forward(x, after, false);

    // Q values change because the specialised output layers were reset.
    bool changed = false;
    for (std::size_t i = 0; i < before.q[0][0].size(); ++i)
        changed |= before.q[0][0].raw()[i] != after.q[0][0].raw()[i];
    EXPECT_TRUE(changed);
    EXPECT_EQ(net.paramCount(),
              MultiAgentBdq(cfg, rng).paramCount());
}

TEST(Bdq, ParamCountFormula)
{
    Rng rng(9);
    BdqConfig cfg;
    cfg.numAgents = 2;
    cfg.stateDimPerAgent = 3;
    cfg.trunkHidden = {4};
    cfg.agentHeadHidden = 5;
    cfg.branchHidden = 6;
    cfg.branchActions = {7};
    MultiAgentBdq net(cfg, rng);
    // trunk: 6*4+4 = 28
    // agents: 2 * [(4*5+5) + (5*1+1)] = 2 * 31 = 62
    // branch: (5*6+6) + (6*7+7) = 36 + 49 = 85
    EXPECT_EQ(net.paramCount(), 28u + 62u + 85u);
}

TEST(Bdq, DeterministicGivenSeed)
{
    const auto cfg = smallConfig(2);
    Rng r1(42), r2(42);
    MultiAgentBdq a(cfg, r1), b(cfg, r2);
    std::vector<float> state(cfg.inputDim(), 0.1f);
    EXPECT_EQ(a.greedyActions(state), b.greedyActions(state));
}

TEST(Bdq, InvalidConfigThrows)
{
    Rng rng(10);
    auto cfg = smallConfig();
    cfg.numAgents = 0;
    EXPECT_THROW(MultiAgentBdq(cfg, rng), twig::common::FatalError);

    cfg = smallConfig();
    cfg.branchActions = {};
    EXPECT_THROW(MultiAgentBdq(cfg, rng), twig::common::FatalError);

    cfg = smallConfig();
    cfg.branchActions = {4, 0};
    EXPECT_THROW(MultiAgentBdq(cfg, rng), twig::common::FatalError);

    cfg = smallConfig();
    cfg.trunkHidden = {};
    EXPECT_THROW(MultiAgentBdq(cfg, rng), twig::common::FatalError);
}

TEST(Bdq, ForwardRejectsWrongWidth)
{
    Rng rng(11);
    const auto cfg = smallConfig(2);
    MultiAgentBdq net(cfg, rng);
    Matrix x(1, cfg.inputDim() + 1);
    BdqOutput out;
    EXPECT_THROW(net.forward(x, out, false), twig::common::FatalError);
}

TEST(Bdq, BackwardRequiresTrainForward)
{
    Rng rng(12);
    const auto cfg = smallConfig(1);
    MultiAgentBdq net(cfg, rng);
    Matrix x(1, cfg.inputDim(), 0.1f);
    BdqOutput out;
    net.forward(x, out, false); // eval mode
    std::vector<std::vector<Matrix>> dq(1);
    dq[0] = {Matrix(1, 5, 0.0f), Matrix(1, 3, 0.0f)};
    EXPECT_THROW(net.backward(dq), twig::common::PanicError);
}

namespace {

/** Loss = sum over agents/branches/actions of Q^2 / 2 on one state. */
double
halfSquaredQ(MultiAgentBdq &net, const Matrix &x)
{
    BdqOutput out;
    net.forward(x, out, false);
    double loss = 0.0;
    for (const auto &per_agent : out.q)
        for (const auto &q : per_agent)
            for (float v : q.raw())
                loss += 0.5 * static_cast<double>(v) * v;
    return loss;
}

} // namespace

TEST(Bdq, OutputLayerGradientsMatchFiniteDifferences)
{
    // The backward pass delivers exact gradients to the advantage- and
    // value-output layers (the paper's 1/K and 1/D rescaling applies
    // only upstream). Check them against central finite differences of
    // L = sum Q^2 / 2, whose dL/dQ = Q.
    Rng rng(21);
    auto cfg = smallConfig(2);
    cfg.dropoutRate = 0.0f;
    MultiAgentBdq net(cfg, rng);
    Matrix x = randomBatch(3, cfg.inputDim(), rng);

    // Analytic pass.
    BdqOutput out;
    net.forward(x, out, true);
    std::vector<std::vector<Matrix>> dq(cfg.numAgents);
    for (std::size_t k = 0; k < cfg.numAgents; ++k)
        for (std::size_t d = 0; d < cfg.numBranches(); ++d)
            dq[k].push_back(out.q[k][d]); // dL/dQ = Q
    net.backward(dq);

    const float eps = 1e-2f;
    // Check several weights of each branch's advantage output layer.
    for (std::size_t d = 0; d < cfg.numBranches(); ++d) {
        Linear &layer = net.advantageOutputLayer(d);
        for (std::size_t probe = 0; probe < 6; ++probe) {
            const std::size_t idx =
                (probe * 37) % layer.mutableWeight().size();
            float &w = layer.mutableWeight().raw()[idx];
            const float orig = w;
            w = orig + eps;
            const double lp = halfSquaredQ(net, x);
            w = orig - eps;
            const double lm = halfSquaredQ(net, x);
            w = orig;
            const double numeric = (lp - lm) / (2.0 * eps);
            const double analytic = layer.gradWeight().raw()[idx];
            EXPECT_NEAR(analytic, numeric,
                        0.05 * std::abs(numeric) + 0.05)
                << "branch " << d << " weight " << idx;
        }
    }
    // And each agent's state-value output layer.
    for (std::size_t k = 0; k < cfg.numAgents; ++k) {
        Linear &layer = net.valueOutputLayer(k);
        for (std::size_t probe = 0; probe < 4; ++probe) {
            const std::size_t idx =
                (probe * 3) % layer.mutableWeight().size();
            float &w = layer.mutableWeight().raw()[idx];
            const float orig = w;
            w = orig + eps;
            const double lp = halfSquaredQ(net, x);
            w = orig - eps;
            const double lm = halfSquaredQ(net, x);
            w = orig;
            const double numeric = (lp - lm) / (2.0 * eps);
            const double analytic = layer.gradWeight().raw()[idx];
            EXPECT_NEAR(analytic, numeric,
                        0.05 * std::abs(numeric) + 0.05)
                << "agent " << k << " weight " << idx;
        }
    }
}
