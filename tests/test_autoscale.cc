/** @file Unit tests for elastic fleet sizing (src/autoscale/) and its
 * ClusterManager integration: decision rule, node classes, billing,
 * the drain protocol and the warm-spawn path. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "autoscale/autoscaler.hh"
#include "autoscale/cost_model.hh"
#include "autoscale/node_class.hh"
#include "baselines/static_manager.hh"
#include "cluster/cluster_manager.hh"
#include "cluster/router.hh"
#include "common/error.hh"
#include "core/twig_manager.hh"
#include "faults/fault_spec.hh"
#include "harness/engine.hh"
#include "harness/registry.hh"
#include "harness/scenario.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"

using namespace twig;
using namespace twig::autoscale;
using twig::common::FatalError;

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

AutoscaleConfig
validConfig()
{
    AutoscaleConfig cfg;
    cfg.minNodes = 1;
    cfg.maxNodes = 4;
    cfg.hiUtilization = 0.6;
    cfg.loUtilization = 0.4;
    cfg.persistIntervals = 1;
    cfg.cooldownIntervals = 1;
    cfg.drainIntervals = 2;
    return cfg;
}

/** A signal whose utilisation is exactly @p util with @p serving of
 * @p max slots active (homogeneous capacity weights). */
struct SignalFixture
{
    std::vector<double> offered;
    std::vector<double> rated{1000.0};
    std::vector<double> trailing;
    std::vector<double> qos{10.0};
    FleetSignal sig;

    SignalFixture(double util, std::size_t serving, std::size_t max,
                  std::size_t draining = 0)
    {
        const double frac =
            static_cast<double>(serving) / static_cast<double>(max);
        offered = {util * rated[0] * frac};
        sig.serving = serving;
        sig.draining = draining;
        sig.standby = max - serving - draining;
        sig.servingCapacityFraction = frac;
        sig.capacityFractionAfterScaleIn =
            static_cast<double>(serving - 1) / static_cast<double>(max);
        sig.offeredRps = &offered;
        sig.ratedRps = &rated;
        sig.qosTargetsMs = &qos;
    }

    void
    setTrailingP99(double p99_ms)
    {
        trailing = {p99_ms};
        sig.trailingP99Ms = &trailing;
    }
};

} // namespace

// ---------------------------------------------------------------------
// AutoscaleConfig validation + JSON
// ---------------------------------------------------------------------

TEST(AutoscaleConfig, ValidatesStructure)
{
    EXPECT_EQ(validConfig().validate(), "");

    auto bad = validConfig();
    bad.minNodes = 0;
    EXPECT_NE(bad.validate(), "");

    bad = validConfig();
    bad.minNodes = 5; // > maxNodes 4
    EXPECT_NE(bad.validate(), "");

    bad = validConfig();
    bad.cooldownIntervals = 0;
    EXPECT_NE(bad.validate(), "");

    bad = validConfig();
    bad.persistIntervals = 0;
    EXPECT_NE(bad.validate(), "");

    bad = validConfig();
    bad.outStepNodes = 0;
    EXPECT_NE(bad.validate(), "");

    bad = validConfig();
    bad.drainIntervals = 0;
    EXPECT_NE(bad.validate(), "");

    bad = validConfig();
    bad.hiUtilization = 1.5;
    EXPECT_NE(bad.validate(), "");

    // The hysteresis bands may not overlap or invert.
    bad = validConfig();
    bad.loUtilization = bad.hiUtilization;
    EXPECT_NE(bad.validate(), "");

    bad = validConfig();
    bad.outTardiness = 0.0;
    EXPECT_NE(bad.validate(), "");

    EXPECT_THROW(Autoscaler{bad}, FatalError);
}

TEST(AutoscaleConfig, JsonRoundTripsAndOmitsDefaults)
{
    AutoscaleConfig cfg;
    cfg.minNodes = 2;
    cfg.maxNodes = 6;
    cfg.hiUtilization = 0.62;
    cfg.outStepNodes = 3;
    const auto j = cfg.toJson();
    // Defaults stay out of the serialised block.
    EXPECT_EQ(j.find("lo_utilization"), nullptr);
    EXPECT_EQ(j.find("cooldown"), nullptr);
    const auto back = AutoscaleConfig::fromJson(j);
    EXPECT_EQ(back.minNodes, 2u);
    EXPECT_EQ(back.maxNodes, 6u);
    EXPECT_DOUBLE_EQ(back.hiUtilization, 0.62);
    EXPECT_EQ(back.outStepNodes, 3u);
    EXPECT_DOUBLE_EQ(back.loUtilization, cfg.loUtilization);
    EXPECT_EQ(back.cooldownIntervals, cfg.cooldownIntervals);
}

// ---------------------------------------------------------------------
// Decision rule
// ---------------------------------------------------------------------

TEST(Autoscaler, ScalesOutWhenUtilizationExceedsHiBand)
{
    auto cfg = validConfig();
    cfg.persistIntervals = 2;
    Autoscaler scaler(cfg);

    SignalFixture hot(0.8, 2, 4);
    // First interval only starts the streak.
    EXPECT_EQ(scaler.decide(hot.sig).kind, ScaleDecision::Kind::None);
    const auto d = scaler.decide(hot.sig);
    EXPECT_EQ(d.kind, ScaleDecision::Kind::Out);
    EXPECT_EQ(d.count, 1u);
    EXPECT_NEAR(d.utilization, 0.8, 1e-12);
}

TEST(Autoscaler, HoldsInsideTheHysteresisGap)
{
    Autoscaler scaler(validConfig());
    // Between lo (0.4 post-retirement) and hi (0.6): no action, ever.
    SignalFixture mid(0.55, 2, 4);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(scaler.decide(mid.sig).kind,
                  ScaleDecision::Kind::None);
}

TEST(Autoscaler, ScaleOutNeedsAStandbySlot)
{
    Autoscaler scaler(validConfig());
    SignalFixture hot(0.9, 4, 4); // fully scaled out already
    EXPECT_EQ(scaler.decide(hot.sig).kind, ScaleDecision::Kind::None);
}

TEST(Autoscaler, ScalesInAgainstPostRetirementUtilization)
{
    Autoscaler scaler(validConfig());
    // 0.2 at 3-of-4 serving; after retiring one: 0.2 * 3/2 = 0.3 < lo.
    SignalFixture cold(0.2, 3, 4);
    const auto d = scaler.decide(cold.sig);
    EXPECT_EQ(d.kind, ScaleDecision::Kind::In);
    EXPECT_EQ(d.count, 1u);

    // 0.35 at 3-of-4: post-retirement 0.525 >= lo — retiring would
    // immediately re-trip the hi band, so the scaler must hold.
    Autoscaler scaler2(validConfig());
    SignalFixture warmish(0.35, 3, 4);
    EXPECT_EQ(scaler2.decide(warmish.sig).kind,
              ScaleDecision::Kind::None);
}

TEST(Autoscaler, NeverDropsBelowMinNodes)
{
    auto cfg = validConfig();
    cfg.minNodes = 2;
    Autoscaler scaler(cfg);
    SignalFixture cold(0.05, 2, 4);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(scaler.decide(cold.sig).kind,
                  ScaleDecision::Kind::None);
}

TEST(Autoscaler, TardinessForcesScaleOutAndVetoesScaleIn)
{
    auto cfg = validConfig();
    cfg.outTardiness = 1.2;
    Autoscaler scaler(cfg);

    // Utilisation looks idle, but the measured tail is blown: the
    // override fires a scale-out anyway (mis-rated class, interference).
    SignalFixture lying(0.1, 2, 4);
    lying.setTrailingP99(15.0); // 1.5x the 10 ms target
    const auto d = scaler.decide(lying.sig);
    EXPECT_EQ(d.kind, ScaleDecision::Kind::Out);
    EXPECT_NEAR(d.tardiness, 1.5, 1e-12);

    // Tardiness just above 1 does not force an out, but vetoes the in
    // that the idle utilisation would otherwise take.
    Autoscaler scaler2(cfg);
    SignalFixture tail(0.1, 2, 4);
    tail.setTrailingP99(11.0);
    cfg.minNodes = 1;
    EXPECT_EQ(scaler2.decide(tail.sig).kind, ScaleDecision::Kind::None);
}

TEST(Autoscaler, CooldownBlocksThenExpires)
{
    auto cfg = validConfig();
    cfg.cooldownIntervals = 3;
    Autoscaler scaler(cfg);

    SignalFixture hot(0.9, 2, 4);
    EXPECT_EQ(scaler.decide(hot.sig).kind, ScaleDecision::Kind::Out);
    // Condition persists straight through the cooldown...
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(scaler.decide(hot.sig).kind,
                  ScaleDecision::Kind::None);
    // ...and fires the moment it expires.
    EXPECT_EQ(scaler.decide(hot.sig).kind, ScaleDecision::Kind::Out);
}

TEST(Autoscaler, OutStepIsClampedToStandby)
{
    auto cfg = validConfig();
    cfg.outStepNodes = 3;
    Autoscaler scaler(cfg);
    SignalFixture hot(0.9, 3, 4); // one standby slot left
    const auto d = scaler.decide(hot.sig);
    EXPECT_EQ(d.kind, ScaleDecision::Kind::Out);
    EXPECT_EQ(d.count, 1u);
}

TEST(Autoscaler, WorstSignalHelpers)
{
    FleetSignal empty;
    EXPECT_DOUBLE_EQ(Autoscaler::worstUtilization(empty, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(Autoscaler::worstTardiness(empty), 0.0);

    const std::vector<double> offered{100.0, 450.0};
    const std::vector<double> rated{1000.0, 500.0};
    const std::vector<double> p99{5.0, 30.0};
    const std::vector<double> qos{10.0, 20.0};
    FleetSignal sig;
    sig.offeredRps = &offered;
    sig.ratedRps = &rated;
    sig.trailingP99Ms = &p99;
    sig.qosTargetsMs = &qos;
    // Worst service wins: 450/500 = 0.9 over 100/1000 = 0.1.
    EXPECT_NEAR(Autoscaler::worstUtilization(sig, 1.0), 0.9, 1e-12);
    EXPECT_NEAR(Autoscaler::worstUtilization(sig, 0.5), 1.8, 1e-12);
    // 30/20 = 1.5 over 5/10 = 0.5.
    EXPECT_NEAR(Autoscaler::worstTardiness(sig), 1.5, 1e-12);
}

// ---------------------------------------------------------------------
// Node classes
// ---------------------------------------------------------------------

TEST(NodeClass, BuiltinCatalogue)
{
    const auto &catalogue = builtinNodeClasses();
    ASSERT_EQ(catalogue.size(), 4u);
    for (const auto &cls : catalogue)
        EXPECT_EQ(cls.validate(), "");
    EXPECT_TRUE(isBuiltinNodeClass("std18"));
    EXPECT_TRUE(isBuiltinNodeClass("little6"));
    EXPECT_TRUE(isBuiltinNodeClass("gen1"));
    EXPECT_TRUE(isBuiltinNodeClass("gen2"));
    EXPECT_FALSE(isBuiltinNodeClass("quantum9"));

    // The reference class is exactly one capacity unit; the others
    // scale by cores x peak GHz x rate scale.
    const NodeClass *std18 = findNodeClass({}, "std18");
    ASSERT_NE(std18, nullptr);
    EXPECT_DOUBLE_EQ(std18->capacityFactor(), 1.0);
    const NodeClass *gen2 = findNodeClass({}, "gen2");
    ASSERT_NE(gen2, nullptr);
    EXPECT_DOUBLE_EQ(gen2->capacityFactor(), 1.25);
    const NodeClass *little6 = findNodeClass({}, "little6");
    ASSERT_NE(little6, nullptr);
    EXPECT_LT(little6->capacityFactor(), 0.5);
    EXPECT_EQ(little6->machine().numCores, 6u);
}

TEST(NodeClass, SpecClassesShadowNothingAndWinLookups)
{
    NodeClass custom;
    custom.id = "fat32";
    custom.cores = 32;
    const std::vector<NodeClass> classes{custom};
    const NodeClass *hit = findNodeClass(classes, "fat32");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->cores, 32u);
    // Builtins still resolve through the same lookup.
    EXPECT_NE(findNodeClass(classes, "gen1"), nullptr);
    EXPECT_EQ(findNodeClass(classes, "absent"), nullptr);
}

TEST(NodeClass, ValidatesStructure)
{
    NodeClass cls;
    cls.id = "x";
    EXPECT_EQ(cls.validate(), "");
    cls.id = "";
    EXPECT_NE(cls.validate(), "");
    cls.id = "x";
    cls.cores = 0;
    EXPECT_NE(cls.validate(), "");
    cls = NodeClass{};
    cls.id = "x";
    cls.serviceRateScale = 0.0;
    EXPECT_NE(cls.validate(), "");
    cls = NodeClass{};
    cls.id = "x";
    cls.dollarsPerHour = -0.1;
    EXPECT_NE(cls.validate(), "");
    cls = NodeClass{};
    cls.id = "x";
    cls.dvfs.minGhz = 2.5; // > maxGhz
    EXPECT_NE(cls.validate(), "");
}

TEST(NodeClass, JsonRoundTrip)
{
    NodeClass cls;
    cls.id = "gen3";
    cls.cores = 24;
    cls.serviceRateScale = 1.4;
    cls.dollarsPerHour = 1.6;
    cls.dvfs.minGhz = 1.4;
    cls.dvfs.maxGhz = 2.4;
    cls.dvfs.stepGhz = 0.2;
    const auto back = NodeClass::fromJson(cls.toJson());
    EXPECT_EQ(back.id, "gen3");
    EXPECT_EQ(back.cores, 24u);
    EXPECT_DOUBLE_EQ(back.serviceRateScale, 1.4);
    EXPECT_DOUBLE_EQ(back.dollarsPerHour, 1.6);
    EXPECT_DOUBLE_EQ(back.dvfs.maxGhz, 2.4);
}

// ---------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------

TEST(CostModel, BillsPoweredSlotsByTheHour)
{
    CostModel model({1.0, 0.5, 2.0});
    EXPECT_EQ(model.numNodes(), 3u);
    EXPECT_DOUBLE_EQ(model.nodeRate(1), 0.5);
    EXPECT_DOUBLE_EQ(model.totalDollars(), 0.0);

    // One full hour with the middle slot parked: $1 + $2.
    const double added = model.chargeInterval({1, 0, 1}, 3600.0);
    EXPECT_DOUBLE_EQ(added, 3.0);
    EXPECT_DOUBLE_EQ(model.totalDollars(), 3.0);

    // One second, everything powered: (1 + 0.5 + 2) / 3600.
    model.chargeInterval({1, 1, 1}, 1.0);
    EXPECT_NEAR(model.totalDollars(), 3.0 + 3.5 / 3600.0, 1e-12);
}

// ---------------------------------------------------------------------
// Router drain protocol (the scale-in primitive)
// ---------------------------------------------------------------------

TEST(RouterDrain, DrainingNodeGetsNoNewLoad)
{
    cluster::RouterConfig cfg;
    cfg.policy = cluster::RoutingPolicy::WeightedRoundRobin;
    cluster::Router router(cfg, 7);
    const std::vector<double> rps{900.0};
    const std::vector<double> weights{1.0, 1.0, 1.0};

    router.drain(1);
    EXPECT_TRUE(router.isUp(1));
    EXPECT_TRUE(router.isDraining(1));
    EXPECT_FALSE(router.isServing(1));

    const auto shares = router.route(rps, weights, {});
    EXPECT_DOUBLE_EQ(shares[1][0], 0.0);
    EXPECT_NEAR(shares[0][0] + shares[2][0], 900.0, 1e-9);

    router.undrain(1);
    const auto after = router.route(rps, weights, {});
    EXPECT_GT(after[1][0], 0.0);
}

TEST(RouterDrain, AllDrainingRoutesZeroWithoutShed)
{
    cluster::RouterConfig cfg;
    cfg.policy = cluster::RoutingPolicy::Static;
    cluster::Router router(cfg, 7);
    const std::vector<double> rps{500.0};
    const std::vector<double> weights{1.0, 1.0};
    std::vector<std::vector<double>> out;

    // Every node up but draining — the last node in the domain going
    // weight-0 must NOT read as "all dark": nothing was refused.
    router.drain(0);
    router.drain(1);
    EXPECT_TRUE(router.routeInto(rps, weights, {}, out));
    EXPECT_DOUBLE_EQ(out[0][0], 0.0);
    EXPECT_DOUBLE_EQ(out[1][0], 0.0);

    // Actually dark (evicted) is still a shed.
    router.evict(0);
    router.evict(1);
    EXPECT_FALSE(router.routeInto(rps, weights, {}, out));
}

// ---------------------------------------------------------------------
// ClusterManager integration
// ---------------------------------------------------------------------

namespace {

cluster::ClusterManager::ManagerFactory
staticNodes()
{
    return [](const sim::MachineConfig &machine,
              const std::vector<sim::ServiceProfile> &,
              std::uint64_t) -> std::unique_ptr<core::TaskManager> {
        return std::make_unique<baselines::StaticManager>(machine);
    };
}

/** Replays a per-step RPS script (last value held). */
class ScriptedLoad : public sim::LoadGenerator
{
  public:
    explicit ScriptedLoad(std::vector<double> rps) : rps_(std::move(rps))
    {
    }

    double
    rps(std::size_t step) const override
    {
        return rps_[std::min(step, rps_.size() - 1)];
    }

  private:
    std::vector<double> rps_;
};

/** A 4-slot masstree fleet with an elastic 1..4 autoscaler and a
 * scripted fleet load (fractions of the full 4-node rated RPS). */
cluster::ClusterManager
makeElasticFleet(const std::vector<double> &fractions,
                 const AutoscaleConfig &cfg, std::size_t initial,
                 std::vector<double> rates = {})
{
    const auto masstree = services::masstree();
    const double rated = masstree.maxLoadRps * 4.0;
    cluster::ClusterConfig ccfg;
    ccfg.router.policy = cluster::RoutingPolicy::WeightedRoundRobin;
    std::vector<double> script;
    for (const double f : fractions)
        script.push_back(f * rated);
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(std::make_unique<ScriptedLoad>(std::move(script)));
    cluster::ClusterManager fleet(ccfg, {masstree}, std::move(loads),
                                  42);
    for (std::size_t n = 0; n < 4; ++n)
        fleet.addNode(sim::MachineConfig{}, staticNodes());
    fleet.setAutoscaler(cfg, {rated}, std::move(rates), initial);
    return fleet;
}

std::size_t
countKind(const std::vector<cluster::ScaleEvent> &log,
          cluster::ScaleEvent::Kind kind)
{
    return static_cast<std::size_t>(
        std::count_if(log.begin(), log.end(), [kind](const auto &ev) {
            return ev.kind == kind;
        }));
}

} // namespace

TEST(ClusterAutoscale, StandbySlotsStartParkedAndUnbilled)
{
    auto cfg = validConfig();
    auto fleet = makeElasticFleet({0.2}, cfg, 2);
    const auto &stats = fleet.step();
    EXPECT_EQ(stats.servingNodes, 2u);
    EXPECT_EQ(stats.drainingNodes, 0u);
    EXPECT_EQ(stats.nodeUp[2], 0u);
    EXPECT_EQ(stats.nodeUp[3], 0u);
    // Two slots at $1/h for one machine interval.
    const double interval_s =
        fleet.node(0).machine().intervalSeconds;
    EXPECT_NEAR(fleet.costDollars(), 2.0 * interval_s / 3600.0, 1e-12);
}

TEST(ClusterAutoscale, ScalesOutLowestStandbyFirstUnderLoad)
{
    auto cfg = validConfig();
    auto fleet = makeElasticFleet({0.8}, cfg, 2);
    fleet.run(8, 2);
    const auto &log = fleet.scaleLog();
    ASSERT_GE(countKind(log, cluster::ScaleEvent::Kind::ScaleOut), 2u);
    // Victim selection is positional: slot 2 activates before slot 3.
    std::vector<std::size_t> activated;
    for (const auto &ev : log)
        if (ev.kind == cluster::ScaleEvent::Kind::ScaleOut)
            activated.push_back(ev.node);
    EXPECT_EQ(activated[0], 2u);
    EXPECT_EQ(activated[1], 3u);
}

TEST(ClusterAutoscale, ScaleInDrainsThenRetiresHighestFirst)
{
    auto cfg = validConfig();
    cfg.drainIntervals = 2;
    auto fleet = makeElasticFleet({0.1}, cfg, 3);
    std::vector<cluster::FleetIntervalStats> trace;
    fleet.run(10, 2,
              [&trace](std::size_t, const cluster::FleetIntervalStats &s) {
                  trace.push_back(s);
              });
    const auto &log = fleet.scaleLog();
    ASSERT_GE(countKind(log, cluster::ScaleEvent::Kind::DrainStart), 1u);
    ASSERT_GE(countKind(log, cluster::ScaleEvent::Kind::Retire), 1u);
    // Highest-indexed serving slot drains first.
    const auto drain = std::find_if(
        log.begin(), log.end(), [](const auto &ev) {
            return ev.kind == cluster::ScaleEvent::Kind::DrainStart;
        });
    EXPECT_EQ(drain->node, 2u);
    const auto retire = std::find_if(
        log.begin(), log.end(), [](const auto &ev) {
            return ev.kind == cluster::ScaleEvent::Kind::Retire;
        });
    EXPECT_EQ(retire->node, 2u);
    // The drain window separates the two actions and keeps the slot
    // powered (draining, billed) the whole way.
    EXPECT_EQ(retire->step, drain->step + cfg.drainIntervals);
    for (std::size_t t = drain->step; t < retire->step; ++t) {
        EXPECT_EQ(trace[t].drainingNodes, 1u);
        EXPECT_EQ(trace[t].nodeUp[2], 1u);
    }
    EXPECT_EQ(trace[retire->step].nodeUp[2], 0u);
}

TEST(ClusterAutoscale, BillMatchesPoweredSlotSeconds)
{
    auto cfg = validConfig();
    auto fleet = makeElasticFleet({0.1}, cfg, 3);
    const double interval_s =
        fleet.node(0).machine().intervalSeconds;
    double expected = 0.0;
    const auto result = fleet.run(
        12, 2,
        [&expected, interval_s](std::size_t,
                                const cluster::FleetIntervalStats &s) {
            std::size_t powered = 0;
            for (const auto up : s.nodeUp)
                powered += up != 0 ? 1 : 0;
            expected +=
                static_cast<double>(powered) * interval_s / 3600.0;
        });
    EXPECT_NEAR(fleet.costDollars(), expected, 1e-9);
    EXPECT_DOUBLE_EQ(result.metrics.costDollars, fleet.costDollars());
    // The elastic bill must undercut always-on max provisioning.
    EXPECT_LT(fleet.costDollars(), 4.0 * 12.0 * interval_s / 3600.0);
}

TEST(ClusterAutoscale, SetupOrderingAndShapeAreEnforced)
{
    const auto masstree = services::masstree();
    auto make_fleet = [&](std::size_t slots) {
        cluster::ClusterConfig ccfg;
        std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
        loads.push_back(
            std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.5));
        cluster::ClusterManager fleet(ccfg, {masstree},
                                      std::move(loads), 42);
        for (std::size_t n = 0; n < slots; ++n)
            fleet.addNode(sim::MachineConfig{}, staticNodes());
        return fleet;
    };

    // maxNodes must equal the provisioned slot count.
    auto short_fleet = make_fleet(2);
    EXPECT_THROW(
        short_fleet.setAutoscaler(validConfig(), {100.0}, {}, 1),
        FatalError);

    // initial_active outside [min, max].
    auto fleet = make_fleet(4);
    EXPECT_THROW(fleet.setAutoscaler(validConfig(), {100.0}, {}, 5),
                 FatalError);

    // One rated entry per service.
    auto fleet2 = make_fleet(4);
    EXPECT_THROW(
        fleet2.setAutoscaler(validConfig(), {100.0, 50.0}, {}, 2),
        FatalError);

    // Faults arm before the autoscaler, never after (setFaults would
    // reset the standby slots' power state).
    auto fleet3 = make_fleet(4);
    fleet3.setAutoscaler(validConfig(), {100.0}, {}, 2);
    faults::FaultSpec faults;
    faults::FaultAction surge;
    surge.kind = faults::FaultKind::LoadSurge;
    surge.atStep = 1;
    surge.durationSteps = 1;
    surge.multiplier = 2.0;
    faults.actions.push_back(surge);
    EXPECT_THROW(fleet3.setFaults(faults), FatalError);

    // A static fleet can bill without an autoscaler, but not both ways.
    auto fleet4 = make_fleet(4);
    fleet4.setAutoscaler(validConfig(), {100.0}, {}, 2);
    EXPECT_THROW(fleet4.setCostModel({}), FatalError);
}

// ---------------------------------------------------------------------
// Warm spawn through the engine (checkpoint-restore scale-out path)
// ---------------------------------------------------------------------

namespace {

harness::ScenarioSpec
elasticSurgeSpec(const std::string &ckpt)
{
    harness::ScenarioSpec spec;
    spec.name = "autoscale-warm-spawn";
    spec.topology = "cluster";
    harness::ServiceLoadSpec load;
    load.service = "masstree";
    load.pattern = "fixed";
    load.fraction = 0.15; // of the full 4-slot fleet
    spec.services.push_back(load);
    spec.manager = "twig";
    spec.steps = 140;
    spec.window = 40;
    spec.horizon = 140;
    spec.seed = 42;
    spec.nodes = 2;
    spec.policy = "p2c-latency";
    spec.checkpoint = ckpt;

    AutoscaleConfig cfg;
    cfg.minNodes = 2;
    cfg.maxNodes = 4;
    cfg.hiUtilization = 0.6;
    cfg.loUtilization = 0.4;
    cfg.outTardiness = 1.2;
    cfg.persistIntervals = 1;
    cfg.cooldownIntervals = 3;
    cfg.outStepNodes = 2;
    cfg.drainIntervals = 2;
    spec.autoscale = cfg;

    faults::FaultAction surge;
    surge.kind = faults::FaultKind::LoadSurge;
    surge.atStep = 60;
    surge.service = 0;
    surge.durationSteps = 40;
    surge.multiplier = 4.0;
    spec.faults.actions.push_back(surge);
    return spec;
}

} // namespace

TEST(AutoscaleEngine, WarmSpawnMeetsQosWithZeroRampAndReplaysExactly)
{
    // Train a donor across the per-node load range the elastic fleet
    // visits, then warm-start (and warm-spawn) every replica from it.
    const std::string ckpt = tmpPath("autoscale_donor.ckpt");
    harness::ScenarioSpec donor;
    donor.name = "autoscale-donor";
    donor.topology = "cluster";
    harness::ServiceLoadSpec donor_load;
    donor_load.service = "masstree";
    donor_load.pattern = "diurnal";
    donor_load.fraction = 0.75;
    donor_load.lowFraction = 0.25;
    donor.services.push_back(donor_load);
    donor.manager = "twig";
    donor.steps = 300;
    donor.window = 300;
    donor.horizon = 300;
    donor.seed = 42 ^ 0xd0;
    donor.nodes = 1;
    donor.policy = "static";
    harness::EngineOptions donor_opts;
    donor_opts.saveCheckpoint = ckpt;
    harness::Engine(donor_opts).run(donor);

    const auto spec = elasticSurgeSpec(ckpt);
    ASSERT_EQ(
        spec.validate(harness::ManagerRegistry::builtin()), "");

    harness::EngineOptions serial;
    serial.jobs = 1;
    const auto result = harness::Engine(serial).run(spec);
    const auto &trace = result.fleet.trace;

    // The surge must have warm-spawned at least one standby replica.
    std::size_t spawn_step = 0, spawn_node = 0;
    bool spawned = false;
    for (const auto &fs : trace) {
        for (const auto &ev : fs.scaleEvents) {
            if (ev.kind == cluster::ScaleEvent::Kind::ScaleOut &&
                !spawned) {
                spawned = true;
                spawn_step = ev.step;
                spawn_node = ev.node;
            }
        }
    }
    ASSERT_TRUE(spawned);
    EXPECT_GE(spawn_step, 60u);

    // Zero post-spawn ramp: the replica serves AND meets QoS in the
    // very interval it joins — the donor policy needs no re-learning.
    const double qos_ms = services::masstree().qosTargetMs;
    const auto &svc = trace[spawn_step].nodes[spawn_node].services[0];
    EXPECT_GT(svc.completed, 0u);
    EXPECT_LE(svc.p99Ms, qos_ms);

    // And the whole elastic run replays bit-identically at --jobs 8.
    harness::EngineOptions parallel;
    parallel.jobs = 8;
    const auto replay = harness::Engine(parallel).run(spec);
    ASSERT_EQ(replay.fleet.trace.size(), trace.size());
    for (std::size_t t = 0; t < trace.size(); ++t) {
        const auto &x = trace[t];
        const auto &y = replay.fleet.trace[t];
        ASSERT_EQ(x.fleetP99Ms, y.fleetP99Ms);
        ASSERT_EQ(x.totalPowerW, y.totalPowerW);
        ASSERT_EQ(x.nodeUp, y.nodeUp);
        ASSERT_EQ(x.servingNodes, y.servingNodes);
        ASSERT_EQ(x.drainingNodes, y.drainingNodes);
        ASSERT_EQ(x.costDollars, y.costDollars);
        ASSERT_EQ(x.scaleEvents.size(), y.scaleEvents.size());
        for (std::size_t i = 0; i < x.scaleEvents.size(); ++i)
            ASSERT_TRUE(x.scaleEvents[i] == y.scaleEvents[i]);
    }
    EXPECT_DOUBLE_EQ(result.fleet.metrics.costDollars,
                     replay.fleet.metrics.costDollars);
}

TEST(AutoscaleEngine, ReactivatedSlotRestoresItsDrainTimePolicy)
{
    // A slot that served, drained out, and comes back must warm-restore
    // the frame snapshotted at drain time (not cold-start): the scale
    // log shows its retirement and the fault-event stream shows the
    // WarmRestore on reactivation.
    const auto masstree = services::masstree();
    const double rated = masstree.maxLoadRps * 3.0;
    cluster::ClusterConfig ccfg;
    ccfg.router.policy = cluster::RoutingPolicy::WeightedRoundRobin;
    // Script: idle long enough to retire slot 2, then hot enough to
    // bring it back.
    std::vector<double> script;
    for (int i = 0; i < 10; ++i)
        script.push_back(0.05 * rated);
    script.push_back(0.9 * rated);
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(std::make_unique<ScriptedLoad>(std::move(script)));
    cluster::ClusterManager fleet(ccfg, {masstree}, std::move(loads),
                                  42);
    const auto factory =
        [](const sim::MachineConfig &machine,
           const std::vector<sim::ServiceProfile> &svcs,
           std::uint64_t seed) -> std::unique_ptr<core::TaskManager> {
        const auto maxima = services::calibrateCounterMaxima(machine);
        std::vector<core::TwigServiceSpec> specs;
        for (const auto &p : svcs) {
            core::TwigServiceSpec spec;
            spec.name = p.name;
            spec.qosTargetMs = p.qosTargetMs;
            spec.maxLoadRps = p.maxLoadRps;
            spec.powerModel = core::ServicePowerModel(10.0, 1.0, 2.0);
            specs.push_back(spec);
        }
        return std::make_unique<core::TwigManager>(
            core::TwigConfig::fast(40), machine, maxima,
            std::move(specs), seed);
    };
    for (std::size_t n = 0; n < 3; ++n)
        fleet.addNode(sim::MachineConfig{}, factory);
    AutoscaleConfig cfg;
    cfg.minNodes = 1;
    cfg.maxNodes = 3;
    cfg.hiUtilization = 0.6;
    cfg.loUtilization = 0.4;
    cfg.persistIntervals = 1;
    cfg.cooldownIntervals = 1;
    cfg.drainIntervals = 1;
    fleet.setAutoscaler(cfg, {rated}, {}, 3);

    bool warm_restored_after_retire = false;
    std::size_t retired_node = 0;
    bool retired = false;
    fleet.run(40, 5,
              [&](std::size_t, const cluster::FleetIntervalStats &s) {
                  for (const auto &ev : s.scaleEvents) {
                      if (ev.kind == cluster::ScaleEvent::Kind::Retire) {
                          retired = true;
                          retired_node = ev.node;
                      }
                  }
                  for (const auto &ev : s.faultEvents) {
                      if (retired &&
                          ev.kind ==
                              faults::FaultEventKind::WarmRestore &&
                          ev.node == static_cast<std::int64_t>(
                                         retired_node))
                          warm_restored_after_retire = true;
                  }
              });
    ASSERT_TRUE(retired);
    EXPECT_TRUE(warm_restored_after_retire);
}
