/** @file Unit tests for the fault-injection subsystem (src/faults/). */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hh"
#include "common/json.hh"
#include "faults/fault_injector.hh"
#include "faults/fault_spec.hh"

using namespace twig;
using namespace twig::faults;
using twig::common::FatalError;

namespace {

/** A schedule exercising every fault kind. */
FaultSpec
fullSpec()
{
    FaultSpec spec;
    spec.checkpointEverySteps = 10;

    FaultAction crash;
    crash.kind = FaultKind::NodeCrash;
    crash.atStep = 20;
    crash.node = 1;
    crash.restartAfterSteps = 15;
    crash.recovery = "warm";
    spec.actions.push_back(crash);

    FaultAction throttle;
    throttle.kind = FaultKind::ThermalThrottle;
    throttle.atStep = 5;
    throttle.node = 0;
    throttle.durationSteps = 8;
    throttle.maxDvfsIndex = 1;
    spec.actions.push_back(throttle);

    FaultAction noise;
    noise.kind = FaultKind::PmcNoise;
    noise.atStep = 7;
    noise.node = 2;
    noise.durationSteps = 10;
    noise.sigma = 0.25;
    noise.staleProb = 0.1;
    spec.actions.push_back(noise);

    FaultAction surge;
    surge.kind = FaultKind::LoadSurge;
    surge.atStep = 12;
    surge.service = 1;
    surge.durationSteps = 6;
    surge.multiplier = 1.5;
    spec.actions.push_back(surge);

    FaultAction corrupt;
    corrupt.kind = FaultKind::CheckpointCorrupt;
    corrupt.atStep = 18;
    corrupt.node = 1;
    spec.actions.push_back(corrupt);

    return spec;
}

/** Events the injector reports at one step. */
std::vector<FaultEvent>
at(const FaultInjector &injector, std::size_t step)
{
    std::vector<FaultEvent> out;
    injector.eventsAt(step, out);
    return out;
}

} // namespace

TEST(FaultKind, NamesRoundTrip)
{
    for (const FaultKind kind :
         {FaultKind::NodeCrash, FaultKind::ThermalThrottle,
          FaultKind::PmcNoise, FaultKind::LoadSurge,
          FaultKind::CheckpointCorrupt})
        EXPECT_EQ(faultKindByName(faultKindName(kind)), kind);
}

TEST(FaultKind, UnknownNameListsTheValidSet)
{
    try {
        faultKindByName("gremlin");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("gremlin"), std::string::npos) << msg;
        for (const char *valid :
             {"node_crash", "thermal_throttle", "pmc_noise",
              "load_surge", "checkpoint_corrupt"})
            EXPECT_NE(msg.find(valid), std::string::npos)
                << msg << " should list " << valid;
    }
}

TEST(FaultSpec, JsonRoundTripIsExact)
{
    const FaultSpec spec = fullSpec();
    const auto j = spec.toJson();
    const FaultSpec back = FaultSpec::fromJson(j);
    // dump() is deterministic, so serialised equality is structural
    // equality.
    EXPECT_EQ(j.dump(), back.toJson().dump());
    EXPECT_EQ(back.checkpointEverySteps, spec.checkpointEverySteps);
    ASSERT_EQ(back.actions.size(), spec.actions.size());
    EXPECT_EQ(back.actions[0].recovery, "warm");
    EXPECT_EQ(back.actions[3].multiplier, 1.5);
}

TEST(FaultSpec, UnknownTypeInJsonIsFatal)
{
    const auto j = common::Json::parse(
        R"({"events": [{"type": "quantum_flux", "at": 3}]})");
    EXPECT_THROW(FaultSpec::fromJson(j), FatalError);
}

TEST(FaultSpec, EmptyDetection)
{
    FaultSpec spec;
    EXPECT_TRUE(spec.empty());
    spec.checkpointEverySteps = 5;
    EXPECT_FALSE(spec.empty());
}

TEST(FaultSpec, ValidateAcceptsTheFullSchedule)
{
    EXPECT_EQ(fullSpec().validate(4, 2), "");
}

TEST(FaultSpec, ValidateCatchesBadSchedules)
{
    {
        FaultSpec spec = fullSpec();
        spec.actions[0].node = 4; // fleet has nodes 0..3
        EXPECT_NE(spec.validate(4, 2), "");
    }
    {
        FaultSpec spec = fullSpec();
        spec.actions[3].service = 2; // services 0..1
        EXPECT_NE(spec.validate(4, 2), "");
    }
    {
        FaultSpec spec = fullSpec();
        spec.actions[1].durationSteps = 0; // throttle needs a window
        EXPECT_NE(spec.validate(4, 2), "");
    }
    {
        FaultSpec spec = fullSpec();
        spec.actions[0].recovery = "lukewarm";
        EXPECT_NE(spec.validate(4, 2), "");
    }
    {
        FaultSpec spec = fullSpec();
        spec.actions[2].sigma = 0.0; // noise without sigma or staleness
        spec.actions[2].staleProb = 0.0;
        EXPECT_NE(spec.validate(4, 2), "");
    }
    {
        FaultSpec spec = fullSpec();
        spec.actions[2].staleProb = 1.5; // probability out of range
        EXPECT_NE(spec.validate(4, 2), "");
    }
    {
        FaultSpec spec = fullSpec();
        spec.actions[3].multiplier = 0.0; // surge must scale something
        EXPECT_NE(spec.validate(4, 2), "");
    }
}

TEST(FaultInjector, ExpandsTheScheduleIntoTimedTransitions)
{
    const FaultInjector injector(fullSpec(), 42);

    const auto throttle_start = at(injector, 5);
    ASSERT_EQ(throttle_start.size(), 1u);
    EXPECT_EQ(throttle_start[0].kind, FaultEventKind::ThrottleStart);
    EXPECT_EQ(throttle_start[0].node, 0);
    EXPECT_EQ(throttle_start[0].value, 1.0); // max DVFS index

    const auto throttle_end = at(injector, 13);
    ASSERT_EQ(throttle_end.size(), 1u);
    EXPECT_EQ(throttle_end[0].kind, FaultEventKind::ThrottleEnd);

    const auto crash = at(injector, 20);
    ASSERT_EQ(crash.size(), 1u);
    EXPECT_EQ(crash[0].kind, FaultEventKind::NodeCrash);
    EXPECT_EQ(crash[0].node, 1);

    const auto restart = at(injector, 35);
    ASSERT_EQ(restart.size(), 1u);
    EXPECT_EQ(restart[0].kind, FaultEventKind::NodeRestart);
    EXPECT_EQ(restart[0].note, "warm");

    const auto surge_start = at(injector, 12);
    ASSERT_EQ(surge_start.size(), 1u);
    EXPECT_EQ(surge_start[0].kind, FaultEventKind::SurgeStart);
    EXPECT_EQ(surge_start[0].service, 1);
    EXPECT_EQ(surge_start[0].value, 1.5);

    EXPECT_TRUE(at(injector, 3).empty());
    EXPECT_TRUE(at(injector, 36).empty());
    EXPECT_EQ(injector.lastEventStep(), 35u);
}

TEST(FaultInjector, CrashWithoutRestartNeverComesBack)
{
    FaultSpec spec;
    FaultAction crash;
    crash.kind = FaultKind::NodeCrash;
    crash.atStep = 4;
    crash.node = 0;
    crash.restartAfterSteps = 0;
    spec.actions.push_back(crash);

    const FaultInjector injector(spec, 1);
    EXPECT_EQ(at(injector, 4).size(), 1u);
    EXPECT_EQ(injector.lastEventStep(), 4u);
    for (std::size_t step = 5; step < 50; ++step)
        EXPECT_TRUE(at(injector, step).empty()) << "step " << step;
}

TEST(FaultInjector, PmcNoiseSeedsAreDerivedAndReproducible)
{
    FaultSpec spec;
    for (std::size_t i = 0; i < 2; ++i) {
        FaultAction noise;
        noise.kind = FaultKind::PmcNoise;
        noise.atStep = 3 + i * 10;
        noise.node = i;
        noise.durationSteps = 4;
        noise.sigma = 0.2;
        spec.actions.push_back(noise);
    }

    const FaultInjector a(spec, 7);
    const FaultInjector b(spec, 7);
    const FaultInjector c(spec, 8);
    const auto first_a = at(a, 3);
    const auto second_a = at(a, 13);
    ASSERT_EQ(first_a.size(), 1u);
    ASSERT_EQ(second_a.size(), 1u);
    EXPECT_NE(first_a[0].seed, 0u);
    // Distinct actions draw from distinct noise streams...
    EXPECT_NE(first_a[0].seed, second_a[0].seed);
    // ...the same schedule at the same seed replays identically...
    EXPECT_EQ(first_a[0], at(b, 3)[0]);
    // ...and a different base seed shifts every derived seed.
    EXPECT_NE(first_a[0].seed, at(c, 3)[0].seed);
}

TEST(FaultEvent, DescribeNamesTheEvent)
{
    FaultEvent ev;
    ev.step = 17;
    ev.kind = FaultEventKind::WarmRestore;
    ev.node = 2;
    const std::string text = ev.describe();
    EXPECT_NE(text.find("warm_restore"), std::string::npos) << text;
    EXPECT_NE(text.find("17"), std::string::npos) << text;
    EXPECT_NE(text.find("2"), std::string::npos) << text;
}
