/** @file Unit tests for common::Rng (determinism and distributions). */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

using twig::common::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const auto x0 = a();
    const auto x1 = a();
    a.reseed(7);
    EXPECT_EQ(a(), x0);
    EXPECT_EQ(a(), x1);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 2.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 2.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(6);
        EXPECT_LT(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntClosedRange)
{
    Rng rng(17);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-2, 3);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(4.0);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LognormalMeanAndCv)
{
    Rng rng(31);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.lognormalMean(5.0, 0.8);
        EXPECT_GT(x, 0.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.1);
    EXPECT_NEAR(std::sqrt(var) / mean, 0.8, 0.05);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(37);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(41);
    Rng b = a.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

class RngUniformIntBound : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngUniformIntBound, NeverReachesBound)
{
    Rng rng(GetParam() * 1000 + 1);
    const std::uint64_t n = GetParam();
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.uniformInt(n), n);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformIntBound,
                         ::testing::Values(1, 2, 3, 7, 18, 100, 1 << 20));
