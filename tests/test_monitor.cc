/** @file Unit tests for Twig's system monitor. */

#include <gtest/gtest.h>

#include "core/monitor.hh"

using namespace twig::core;
using namespace twig::sim;

namespace {

PmcVector
maxima()
{
    PmcVector m;
    m.fill(100.0);
    return m;
}

PmcVector
raw(double v)
{
    PmcVector r;
    r.fill(v);
    return r;
}

} // namespace

TEST(Monitor, NormalisesToUnitRange)
{
    SystemMonitor mon(1, maxima(), 1);
    const auto s = mon.update(0, raw(50.0));
    ASSERT_EQ(s.size(), kNumPmcs);
    for (float v : s)
        EXPECT_FLOAT_EQ(v, 0.5f);
}

TEST(Monitor, ClampsAboveCeiling)
{
    SystemMonitor mon(1, maxima(), 1);
    const auto s = mon.update(0, raw(250.0));
    for (float v : s)
        EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Monitor, EtaSmoothingUsesRecencyWeights)
{
    // eta = 2: weights (2/3 newest, 1/3 oldest).
    SystemMonitor mon(1, maxima(), 2);
    mon.update(0, raw(30.0));
    const auto s = mon.update(0, raw(90.0));
    // 0.9 * 2/3 + 0.3 * 1/3 = 0.7
    for (float v : s)
        EXPECT_NEAR(v, 0.7f, 1e-5f);
}

TEST(Monitor, WindowDropsOldSamples)
{
    SystemMonitor mon(1, maxima(), 2);
    mon.update(0, raw(100.0)); // will age out
    mon.update(0, raw(0.0));
    const auto s = mon.update(0, raw(0.0));
    for (float v : s)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Monitor, StateBeforeFirstUpdateIsZero)
{
    SystemMonitor mon(2, maxima(), 5);
    for (float v : mon.state(1))
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Monitor, JointStateConcatenatesServices)
{
    SystemMonitor mon(2, maxima(), 1);
    mon.update(0, raw(20.0));
    mon.update(1, raw(80.0));
    const auto joint = mon.jointState();
    ASSERT_EQ(joint.size(), 2 * kNumPmcs);
    EXPECT_FLOAT_EQ(joint[0], 0.2f);
    EXPECT_FLOAT_EQ(joint[kNumPmcs], 0.8f);
}

TEST(Monitor, ResetClearsOneServiceOnly)
{
    SystemMonitor mon(2, maxima(), 3);
    mon.update(0, raw(50.0));
    mon.update(1, raw(50.0));
    mon.reset(0);
    EXPECT_FLOAT_EQ(mon.state(0)[0], 0.0f);
    EXPECT_FLOAT_EQ(mon.state(1)[0], 0.5f);
}

TEST(Monitor, PartialWindowRenormalisesWeights)
{
    // With eta = 5 but a single observation, the state equals that
    // observation (weights renormalised over the available history).
    SystemMonitor mon(1, maxima(), 5);
    const auto s = mon.update(0, raw(40.0));
    for (float v : s)
        EXPECT_NEAR(v, 0.4f, 1e-6f);
}

TEST(Monitor, Validation)
{
    EXPECT_THROW(SystemMonitor(0, maxima(), 5),
                 twig::common::FatalError);
    EXPECT_THROW(SystemMonitor(1, maxima(), 0),
                 twig::common::FatalError);
    PmcVector bad = maxima();
    bad[3] = 0.0;
    EXPECT_THROW(SystemMonitor(1, bad, 5), twig::common::FatalError);

    SystemMonitor mon(1, maxima(), 5);
    EXPECT_THROW(mon.update(1, raw(1.0)), twig::common::FatalError);
    EXPECT_THROW(mon.state(1), twig::common::FatalError);
    EXPECT_THROW(mon.reset(1), twig::common::FatalError);
}
