/** @file Unit tests for the mapper module and resource arbitration. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/mapper.hh"

using namespace twig::core;
using namespace twig::sim;

namespace {

MachineConfig
machine()
{
    return MachineConfig{};
}

std::set<std::size_t>
idSet(const std::vector<std::size_t> &ids)
{
    return {ids.begin(), ids.end()};
}

} // namespace

TEST(Mapper, SingleServiceGetsRequestedCores)
{
    Mapper mapper(machine());
    const auto out = mapper.map({ResourceRequest{6, 3}});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dedicatedCores.size(), 6u);
    EXPECT_TRUE(out[0].sharedCores.empty());
    EXPECT_DOUBLE_EQ(out[0].freqGhz, 1.5);
    EXPECT_EQ(out[0].shareCount, 1u);
}

TEST(Mapper, RequestsClampedToValidRange)
{
    Mapper mapper(machine());
    const auto out = mapper.map({ResourceRequest{0, 99}});
    EXPECT_EQ(out[0].dedicatedCores.size(), 1u); // at least one core
    EXPECT_DOUBLE_EQ(out[0].freqGhz, 2.0);       // clamped to max DVFS

    const auto big = mapper.map({ResourceRequest{500, 0}});
    EXPECT_EQ(big[0].dedicatedCores.size(), 18u);
}

TEST(Mapper, DisjointAllocationsWhenTheyFit)
{
    Mapper mapper(machine());
    const auto out =
        mapper.map({ResourceRequest{6, 2}, ResourceRequest{8, 7}});
    const auto a = idSet(out[0].dedicatedCores);
    const auto b = idSet(out[1].dedicatedCores);
    EXPECT_EQ(a.size(), 6u);
    EXPECT_EQ(b.size(), 8u);
    for (std::size_t id : a) {
        EXPECT_EQ(b.count(id), 0u);
        EXPECT_LT(id, 18u);
    }
}

TEST(Mapper, LocalityPrefersStrideTwo)
{
    // The paper's example: few-core services receive even-stride IDs.
    Mapper mapper(machine());
    const auto out = mapper.map({ResourceRequest{3, 8}});
    const auto &ids = out[0].dedicatedCores;
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(ids[0], 0u);
    EXPECT_EQ(ids[1], 2u);
    EXPECT_EQ(ids[2], 4u);
}

TEST(Mapper, ServicesStartInSeparateRegions)
{
    Mapper mapper(machine());
    const auto out =
        mapper.map({ResourceRequest{3, 8}, ResourceRequest{4, 8}});
    // Service 1's region starts at core 9 (18/2).
    EXPECT_EQ(out[1].dedicatedCores[0], 9u);
    EXPECT_EQ(out[1].dedicatedCores[1], 11u);
}

TEST(Mapper, ArbitrationPaperExample)
{
    // Paper §IV (scaled to a 10-core socket): sv-1 wants 8 @ 1.2 GHz,
    // sv-2 wants 5 @ 2.0 GHz. Overlap v = 3, so sv-1 keeps 5 dedicated,
    // sv-2 keeps 2, and 3 cores are time-shared at the highest
    // requested DVFS state (2.0 GHz).
    MachineConfig m;
    m.numCores = 10;
    Mapper mapper(m);
    const auto out =
        mapper.map({ResourceRequest{8, 0}, ResourceRequest{5, 8}});

    EXPECT_EQ(out[0].dedicatedCores.size(), 5u);
    EXPECT_EQ(out[1].dedicatedCores.size(), 2u);
    EXPECT_EQ(out[0].sharedCores.size(), 3u);
    EXPECT_EQ(out[1].sharedCores.size(), 3u);
    EXPECT_EQ(idSet(out[0].sharedCores), idSet(out[1].sharedCores));
    EXPECT_EQ(out[0].shareCount, 2u);
    EXPECT_EQ(out[1].shareCount, 2u);
    EXPECT_DOUBLE_EQ(out[0].freqGhz, 1.2);
    EXPECT_DOUBLE_EQ(out[1].freqGhz, 2.0);
    EXPECT_DOUBLE_EQ(out[0].sharedFreqGhz, 2.0);
    EXPECT_DOUBLE_EQ(out[1].sharedFreqGhz, 2.0);
}

TEST(Mapper, ArbitrationUsesEveryCoreExactlyOnce)
{
    MachineConfig m;
    Mapper mapper(m);
    const auto out =
        mapper.map({ResourceRequest{14, 4}, ResourceRequest{12, 6}});
    std::set<std::size_t> all;
    std::size_t listed = 0;
    for (const auto &a : out) {
        for (std::size_t id : a.dedicatedCores) {
            EXPECT_TRUE(all.insert(id).second) << "dup core " << id;
            ++listed;
        }
    }
    // Shared pool is listed identically in both assignments.
    for (std::size_t id : out[0].sharedCores) {
        EXPECT_TRUE(all.insert(id).second);
        ++listed;
    }
    EXPECT_EQ(listed, m.numCores);
    EXPECT_EQ(all.size(), m.numCores);
}

TEST(Mapper, ArbitrationPhysicalCapacityConserved)
{
    // The mapper hands out every physical core exactly once: the sum
    // of dedicated cores plus the (single) shared pool is the socket.
    // How much of the pool each sharer can *use* is decided by the
    // server's work-conserving split at runtime.
    MachineConfig m;
    Mapper mapper(m);
    const auto out =
        mapper.map({ResourceRequest{18, 8}, ResourceRequest{18, 8}});
    const std::size_t total = out[0].dedicatedCores.size() +
        out[1].dedicatedCores.size() + out[0].sharedCores.size();
    EXPECT_EQ(total, m.numCores);
    EXPECT_EQ(idSet(out[0].sharedCores), idSet(out[1].sharedCores));
}

TEST(Mapper, ThreeWayOverflow)
{
    MachineConfig m;
    Mapper mapper(m);
    const auto out = mapper.map({ResourceRequest{10, 0},
                                 ResourceRequest{10, 4},
                                 ResourceRequest{10, 8}});
    // Every service was cut, so all three share the pool at 2.0 GHz.
    std::size_t shared_participants = 0;
    std::size_t dedicated_total = 0;
    for (const auto &a : out) {
        dedicated_total += a.dedicatedCores.size();
        if (!a.sharedCores.empty()) {
            ++shared_participants;
            EXPECT_EQ(a.shareCount, 3u);
            EXPECT_DOUBLE_EQ(a.sharedFreqGhz, 2.0);
        }
    }
    EXPECT_EQ(shared_participants, 3u);
    EXPECT_EQ(dedicated_total + out[0].sharedCores.size(), 18u);
}

TEST(Mapper, UncutServiceKeepsDedicatedOnly)
{
    MachineConfig m;
    Mapper mapper(m);
    // 2 + 18 = 20 > 18: overlap 2; service 0 (want 2) ends up with
    // some arbitration outcome but the physical cores stay 18.
    const auto out =
        mapper.map({ResourceRequest{2, 0}, ResourceRequest{18, 8}});
    std::set<std::size_t> all;
    for (const auto &a : out) {
        for (std::size_t id : a.dedicatedCores)
            EXPECT_TRUE(all.insert(id).second);
    }
    for (std::size_t id : out[1].sharedCores)
        all.insert(id);
    EXPECT_LE(all.size(), 18u);
}

TEST(Mapper, NoRequestsThrows)
{
    Mapper mapper(machine());
    EXPECT_THROW(mapper.map({}), twig::common::FatalError);
}

class MapperPairSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MapperPairSweep, PhysicalCoresNeverExceedSocket)
{
    // Property: for any pair of requests, every ID is valid, dedicated
    // sets are disjoint, and dedicated + pool cover at most the socket.
    Mapper mapper(machine());
    const auto [r1, r2] = GetParam();
    const auto out = mapper.map({
        ResourceRequest{static_cast<std::size_t>(r1), 3},
        ResourceRequest{static_cast<std::size_t>(r2), 5}});
    std::set<std::size_t> ids;
    for (const auto &a : out) {
        for (std::size_t id : a.dedicatedCores) {
            EXPECT_LT(id, 18u);
            EXPECT_TRUE(ids.insert(id).second) << "dup core " << id;
        }
        for (std::size_t id : a.sharedCores)
            EXPECT_LT(id, 18u);
        EXPECT_GE(a.effectiveCores(), 0.5);
    }
    for (std::size_t id : out[0].sharedCores)
        EXPECT_TRUE(ids.insert(id).second) << "pool overlaps dedicated";
    EXPECT_LE(ids.size(), 18u);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MapperPairSweep,
    ::testing::Combine(::testing::Values(1, 4, 9, 14, 18),
                       ::testing::Values(1, 5, 10, 18)));

TEST(Mapper, RandomisedRequestsKeepInvariants)
{
    // Property sweep: any K in [1,4], any requests — dedicated sets are
    // disjoint, IDs valid, one shared pool listed identically by every
    // participant, shared frequency is the max of participants.
    twig::common::Rng rng(97);
    Mapper mapper(machine());
    for (int trial = 0; trial < 200; ++trial) {
        const auto k = static_cast<std::size_t>(rng.uniformInt(1, 4));
        std::vector<ResourceRequest> reqs(k);
        for (auto &r : reqs) {
            r.numCores = static_cast<std::size_t>(rng.uniformInt(1, 18));
            r.dvfsIndex = static_cast<std::size_t>(rng.uniformInt(9));
        }
        const auto out = mapper.map(reqs);
        ASSERT_EQ(out.size(), k);

        std::set<std::size_t> dedicated_ids;
        const std::vector<std::size_t> *pool = nullptr;
        double max_part_freq = 0.0;
        for (const auto &a : out) {
            for (std::size_t id : a.dedicatedCores) {
                EXPECT_LT(id, 18u);
                EXPECT_TRUE(dedicated_ids.insert(id).second);
            }
            if (!a.sharedCores.empty()) {
                if (pool == nullptr)
                    pool = &a.sharedCores;
                else
                    EXPECT_EQ(idSet(*pool), idSet(a.sharedCores));
                max_part_freq = std::max(max_part_freq, a.freqGhz);
            }
        }
        if (pool != nullptr) {
            for (std::size_t id : *pool) {
                EXPECT_LT(id, 18u);
                EXPECT_EQ(dedicated_ids.count(id), 0u);
            }
            for (const auto &a : out) {
                if (!a.sharedCores.empty())
                    EXPECT_DOUBLE_EQ(a.sharedFreqGhz, max_part_freq);
            }
        }
    }
}
