/** @file Unit tests for the fixed-range histogram. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "stats/histogram.hh"

using twig::stats::Histogram;

TEST(Histogram, BinsSamplesCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);  // bin 0
    h.add(5.5);  // bin 5
    h.add(9.99); // bin 9
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.binCount(1), 0u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(0.0, 1.0, 7);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) / 100.0);
    double total = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b)
        total += h.binFraction(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, DensityIntegratesToOne)
{
    Histogram h(-2.0, 2.0, 16);
    for (int i = 0; i < 1000; ++i)
        h.add(-2.0 + 4.0 * i / 1000.0);
    double integral = 0.0;
    const double width = 4.0 / 16.0;
    for (std::size_t b = 0; b < h.bins(); ++b)
        integral += h.density(b) * width;
    EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, ModeBin)
{
    Histogram h(0.0, 3.0, 3);
    h.add(1.5);
    h.add(1.6);
    h.add(0.1);
    EXPECT_EQ(h.modeBin(), 1u);
}

TEST(Histogram, EmptyFractionsAndDensity)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_EQ(h.binFraction(0), 0.0);
    EXPECT_EQ(h.density(1), 0.0);
    EXPECT_EQ(h.modeBin(), 0u);
}

TEST(Histogram, AsciiRendersOneLinePerBin)
{
    Histogram h(0.0, 1.0, 3);
    h.add(0.5);
    const std::string art = h.ascii(10);
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
    EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, InvalidConstruction)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), twig::common::FatalError);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), twig::common::FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), twig::common::FatalError);
}
