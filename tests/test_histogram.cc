/** @file Unit tests for the fixed-range histogram. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "stats/histogram.hh"

using twig::stats::Histogram;

TEST(Histogram, BinsSamplesCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);  // bin 0
    h.add(5.5);  // bin 5
    h.add(9.99); // bin 9
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.binCount(1), 0u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(0.0, 1.0, 7);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) / 100.0);
    double total = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b)
        total += h.binFraction(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, DensityIntegratesToOne)
{
    Histogram h(-2.0, 2.0, 16);
    for (int i = 0; i < 1000; ++i)
        h.add(-2.0 + 4.0 * i / 1000.0);
    double integral = 0.0;
    const double width = 4.0 / 16.0;
    for (std::size_t b = 0; b < h.bins(); ++b)
        integral += h.density(b) * width;
    EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, ModeBin)
{
    Histogram h(0.0, 3.0, 3);
    h.add(1.5);
    h.add(1.6);
    h.add(0.1);
    EXPECT_EQ(h.modeBin(), 1u);
}

TEST(Histogram, EmptyFractionsAndDensity)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_EQ(h.binFraction(0), 0.0);
    EXPECT_EQ(h.density(1), 0.0);
    EXPECT_EQ(h.modeBin(), 0u);
}

TEST(Histogram, AsciiRendersOneLinePerBin)
{
    Histogram h(0.0, 1.0, 3);
    h.add(0.5);
    const std::string art = h.ascii(10);
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
    EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, InvalidConstruction)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), twig::common::FatalError);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), twig::common::FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), twig::common::FatalError);
}

TEST(Histogram, ClearKeepsBinningDropsSamples)
{
    Histogram h(0.0, 10.0, 10);
    h.add(3.0);
    h.add(7.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(3), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
    h.add(5.5); // still usable with the same binning
    EXPECT_EQ(h.binCount(5), 1u);
}

TEST(Histogram, MergeSumsBinCounts)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(1.5);
    a.add(4.5);
    b.add(4.5);
    b.add(9.5);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.binCount(1), 1u);
    EXPECT_EQ(a.binCount(4), 2u);
    EXPECT_EQ(a.binCount(9), 1u);
    EXPECT_EQ(b.count(), 2u); // the source is untouched
}

TEST(Histogram, MergeThenQuantileMatchesConcatenatedSamples)
{
    // The fleet-wide tail-latency contract: per-node histograms merged
    // then queried must equal one histogram over all samples.
    Histogram node_a(0.0, 50.0, 500);
    Histogram node_b(0.0, 50.0, 500);
    Histogram fleet(0.0, 50.0, 500);
    for (int i = 0; i < 400; ++i) {
        const double x = 0.1 * i; // 0..40, spread over both nodes
        Histogram &node = (i % 3 == 0) ? node_a : node_b;
        node.add(x);
        fleet.add(x);
    }
    node_a.merge(node_b);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(node_a.quantile(q), fleet.quantile(q));
}

TEST(Histogram, HierarchicalMergeMatchesFlatMergeExactly)
{
    // The two-level fleet contract: merging node histograms into
    // per-domain histograms and then the domain histograms into the
    // fleet one must equal the flat node -> fleet merge bin for bin
    // (integer bin counts make the merge associative and commutative).
    const std::size_t nodes = 12, domains = 3;
    std::vector<Histogram> node_hists;
    for (std::size_t n = 0; n < nodes; ++n) {
        node_hists.emplace_back(0.0, 40.0, 256);
        for (std::size_t i = 0; i <= 30 * n; ++i)
            node_hists[n].add(0.013 * static_cast<double>(i * (n + 1)));
    }

    Histogram flat(0.0, 40.0, 256);
    for (const auto &h : node_hists)
        flat.merge(h);

    Histogram fleet(0.0, 40.0, 256);
    for (std::size_t d = 0; d < domains; ++d) {
        Histogram domain(0.0, 40.0, 256);
        for (std::size_t n = d * nodes / domains;
             n < (d + 1) * nodes / domains; ++n)
            domain.merge(node_hists[n]);
        fleet.merge(domain);
    }

    ASSERT_EQ(fleet.count(), flat.count());
    for (std::size_t b = 0; b < flat.bins(); ++b)
        EXPECT_EQ(fleet.binCount(b), flat.binCount(b)) << "bin " << b;
    for (double q : {0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(fleet.quantile(q), flat.quantile(q));
}

TEST(Histogram, HierarchicalMergeWithEmptyDomainsIsExact)
{
    // A domain whose every member crashed contributes an empty
    // histogram; the fleet merge must be unaffected.
    Histogram populated(0.0, 10.0, 32);
    populated.add(2.5);
    populated.add(7.5);

    Histogram flat(0.0, 10.0, 32);
    flat.merge(populated);

    Histogram empty_domain(0.0, 10.0, 32);
    Histogram fleet(0.0, 10.0, 32);
    fleet.merge(empty_domain);
    fleet.merge(populated);
    fleet.merge(empty_domain);

    ASSERT_EQ(fleet.count(), flat.count());
    for (std::size_t b = 0; b < flat.bins(); ++b)
        EXPECT_EQ(fleet.binCount(b), flat.binCount(b));
}

TEST(Histogram, MergeRejectsMismatchedBinning)
{
    Histogram h(0.0, 10.0, 10);
    Histogram other_lo(1.0, 10.0, 10);
    Histogram other_hi(0.0, 20.0, 10);
    Histogram other_bins(0.0, 10.0, 20);
    EXPECT_THROW(h.merge(other_lo), twig::common::FatalError);
    EXPECT_THROW(h.merge(other_hi), twig::common::FatalError);
    EXPECT_THROW(h.merge(other_bins), twig::common::FatalError);
}

TEST(Histogram, QuantileValidatesRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    EXPECT_THROW(h.quantile(-0.1), twig::common::FatalError);
    EXPECT_THROW(h.quantile(1.1), twig::common::FatalError);
}
