/** @file Unit tests for the Static, Hipster, Heracles and PARTIES
 * baselines. */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/heracles.hh"
#include "baselines/hipster.hh"
#include "baselines/parties.hh"
#include "baselines/static_manager.hh"
#include "core/mapper.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;
using namespace twig::baselines;

namespace {

BaselineServiceSpec
spec()
{
    return {"svc", 20.0, 1000.0};
}

/** Telemetry with a given measured p99 (and optional load/power). */
sim::ServerIntervalStats
telemetry(double p99, double rps = 500.0, double power = 50.0,
          std::size_t services = 1)
{
    sim::ServerIntervalStats stats;
    stats.services.resize(services);
    for (auto &s : stats.services) {
        s.p99Ms = p99;
        s.p99InstantMs = p99;
        s.offeredRps = rps;
        s.pmcs.fill(1e9);
    }
    stats.socketPowerW = power;
    return stats;
}

} // namespace

TEST(Static, AlwaysAllCoresMaxDvfs)
{
    sim::MachineConfig m;
    StaticManager mgr(m);
    EXPECT_EQ(mgr.name(), "static");
    for (double p99 : {1.0, 100.0, 10000.0}) {
        const auto reqs = mgr.decide(telemetry(p99));
        ASSERT_EQ(reqs.size(), 1u);
        EXPECT_EQ(reqs[0].numCores, m.numCores);
        EXPECT_EQ(reqs[0].dvfsIndex, m.dvfs.maxIndex());
    }
}

TEST(Hipster, EnumeratesAllConfigsOrderedByPower)
{
    sim::MachineConfig m;
    Hipster mgr(HipsterConfig{}, m, spec(), 1);
    EXPECT_EQ(mgr.numConfigs(), m.numCores * m.dvfs.numStates());
}

TEST(Hipster, HeuristicStepsDownWhenComfortable)
{
    sim::MachineConfig m;
    HipsterConfig cfg;
    cfg.learningPhaseSteps = 1000;
    Hipster mgr(cfg, m, spec(), 2);
    // Very low latency -> step down the power-ordered list each tick.
    const auto r1 = mgr.decide(telemetry(2.0));
    const auto r2 = mgr.decide(telemetry(2.0));
    const double p1 = static_cast<double>(r1[0].numCores) *
        std::pow(1.2 + 0.1 * r1[0].dvfsIndex, 3);
    const double p2 = static_cast<double>(r2[0].numCores) *
        std::pow(1.2 + 0.1 * r2[0].dvfsIndex, 3);
    EXPECT_LE(p2, p1);
}

TEST(Hipster, HeuristicJumpsUpUnderPressure)
{
    sim::MachineConfig m;
    HipsterConfig cfg;
    cfg.learningPhaseSteps = 1000;
    Hipster mgr(cfg, m, spec(), 3);
    // Drive it down to the cheap end of the configuration order.
    for (int i = 0; i < 250; ++i)
        mgr.decide(telemetry(2.0));
    const auto low = mgr.decide(telemetry(2.0));
    // Violation: jump to a much beefier configuration.
    const auto high = mgr.decide(telemetry(50.0));
    const double p_low = static_cast<double>(low[0].numCores) *
        std::pow(1.2 + 0.1 * low[0].dvfsIndex, 3);
    const double p_high = static_cast<double>(high[0].numCores) *
        std::pow(1.2 + 0.1 * high[0].dvfsIndex, 3);
    EXPECT_GT(p_high, p_low * 1.5);
}

TEST(Hipster, SwitchesToTableAfterLearningPhase)
{
    sim::MachineConfig m;
    HipsterConfig cfg;
    cfg.learningPhaseSteps = 5;
    cfg.epsilonAfterLearning = 0.0;
    Hipster mgr(cfg, m, spec(), 4);
    for (int i = 0; i < 5; ++i) {
        mgr.decide(telemetry(10.0));
        EXPECT_TRUE(i == 4 ? !mgr.inLearningPhase()
                           : mgr.inLearningPhase());
    }
    const auto reqs = mgr.decide(telemetry(10.0));
    EXPECT_EQ(reqs.size(), 1u); // greedy table action, still valid
    EXPECT_GE(reqs[0].numCores, 1u);
}

TEST(Hipster, CountsMigrations)
{
    sim::MachineConfig m;
    HipsterConfig cfg;
    cfg.learningPhaseSteps = 1000;
    Hipster mgr(cfg, m, spec(), 5);
    mgr.decide(telemetry(2.0));
    for (int i = 0; i < 30; ++i) {
        mgr.decide(telemetry(2.0));  // drift down
        mgr.decide(telemetry(50.0)); // jump up
    }
    EXPECT_GT(mgr.migrations(), 10u);
}

TEST(Hipster, TableBytesMatchesQTable)
{
    sim::MachineConfig m;
    Hipster mgr(HipsterConfig{}, m, spec(), 6);
    // 26 load buckets x 162 configs x 8 bytes.
    EXPECT_EQ(mgr.tableBytes(), 26u * 162u * sizeof(double));
}

TEST(Hipster, SingleServiceOnly)
{
    sim::MachineConfig m;
    Hipster mgr(HipsterConfig{}, m, spec(), 7);
    EXPECT_THROW(mgr.decide(telemetry(5.0, 500.0, 50.0, 2)),
                 twig::common::FatalError);
}

TEST(Heracles, ViolationTriggersLockout)
{
    sim::MachineConfig m;
    HeraclesConfig cfg;
    cfg.lockoutSteps = 10;
    Heracles mgr(cfg, m, spec());
    // Step 0 is a main-controller tick; report a violation.
    auto reqs = mgr.decide(telemetry(50.0));
    EXPECT_EQ(reqs[0].numCores, m.numCores);
    EXPECT_EQ(reqs[0].dvfsIndex, m.dvfs.maxIndex());
    // Lockout holds even when latency recovers.
    for (int i = 0; i < 8; ++i) {
        reqs = mgr.decide(telemetry(1.0));
        EXPECT_EQ(reqs[0].numCores, m.numCores);
    }
}

TEST(Heracles, ReclaimsCoresWhenComfortable)
{
    sim::MachineConfig m;
    Heracles mgr(HeraclesConfig{}, m, spec());
    std::size_t cores = m.numCores;
    for (int i = 0; i < 20; ++i) {
        const auto reqs = mgr.decide(telemetry(5.0)); // 25% of target
        EXPECT_LE(reqs[0].numCores, cores);
        cores = reqs[0].numCores;
    }
    EXPECT_LT(cores, m.numCores);
}

TEST(Heracles, GrowsCoresNearTarget)
{
    sim::MachineConfig m;
    Heracles mgr(HeraclesConfig{}, m, spec());
    // Walk it down, then pressure at 85% of target (no violation).
    for (int i = 0; i < 20; ++i)
        mgr.decide(telemetry(5.0));
    const auto before = mgr.decide(telemetry(5.0))[0].numCores;
    // Two pressure ticks guarantee hitting a core-controller period.
    mgr.decide(telemetry(17.5));
    const auto after = mgr.decide(telemetry(17.5))[0].numCores;
    EXPECT_GT(after, before);
}

TEST(Heracles, DvfsDropsOnlyNearTdp)
{
    sim::MachineConfig m;
    HeraclesConfig cfg;
    cfg.tdpW = 120.0;
    Heracles mgr(cfg, m, spec());
    // Comfortable latency, power below the cap: DVFS stays at max.
    auto reqs = mgr.decide(telemetry(5.0, 500.0, 60.0));
    reqs = mgr.decide(telemetry(5.0, 500.0, 60.0));
    EXPECT_EQ(reqs[0].dvfsIndex, m.dvfs.maxIndex());
    // Power at 95% of TDP: back off.
    reqs = mgr.decide(telemetry(5.0, 500.0, 115.0));
    EXPECT_LT(reqs[0].dvfsIndex, m.dvfs.maxIndex());
}

TEST(Heracles, HighLoadTriggersGuard)
{
    sim::MachineConfig m;
    HeraclesConfig cfg;
    cfg.lockoutSteps = 5;
    Heracles mgr(cfg, m, spec());
    // Load above 85% of max with fine latency still locks everything.
    const auto reqs = mgr.decide(telemetry(2.0, 900.0));
    EXPECT_EQ(reqs[0].numCores, m.numCores);
}

TEST(Parties, ReclaimsFromTheSlackestService)
{
    sim::MachineConfig m;
    Parties mgr(PartiesConfig{}, m, {spec(), spec()}, 1);
    // Service 0 has huge slack, service 1 is close to target.
    sim::ServerIntervalStats stats = telemetry(2.0, 500.0, 50.0, 2);
    stats.services[1].p99Ms = 18.0;
    const auto before = mgr.decide(stats);
    const auto after = mgr.decide(stats); // next control tick
    // Capacity of the slack service must not grow; the pressured one
    // must not shrink.
    EXPECT_LE(after[0].numCores + after[0].dvfsIndex,
              before[0].numCores + before[0].dvfsIndex);
    EXPECT_GE(after[1].numCores + after[1].dvfsIndex,
              before[1].numCores + before[1].dvfsIndex);
}

TEST(Parties, UpsizesThePressuredService)
{
    sim::MachineConfig m;
    Parties mgr(PartiesConfig{}, m, {spec(), spec()}, 2);
    // Walk service 0 down while both are comfortable.
    sim::ServerIntervalStats comfy = telemetry(2.0, 500.0, 50.0, 2);
    for (int i = 0; i < 30; ++i)
        mgr.decide(comfy);
    auto reqs = mgr.decide(comfy);
    const auto r0 = reqs[0];
    // Now service 0 violates: one of its resources must grow.
    sim::ServerIntervalStats bad = comfy;
    bad.services[0].p99Ms = 25.0;
    reqs = mgr.decide(bad);
    EXPECT_GE(reqs[0].numCores + reqs[0].dvfsIndex,
              r0.numCores + r0.dvfsIndex);
}

TEST(Parties, PeriodGatesAdjustments)
{
    sim::MachineConfig m;
    PartiesConfig cfg;
    cfg.periodSteps = 3;
    Parties mgr(cfg, m, {spec()}, 3);
    const auto r0 = mgr.decide(telemetry(2.0)); // control tick
    const auto r1 = mgr.decide(telemetry(2.0)); // passthrough
    const auto r2 = mgr.decide(telemetry(2.0)); // passthrough
    EXPECT_EQ(r0[0].numCores, r1[0].numCores);
    EXPECT_EQ(r1[0].numCores, r2[0].numCores);
    const auto r3 = mgr.decide(telemetry(2.0)); // next control tick
    EXPECT_LE(r3[0].numCores + r3[0].dvfsIndex,
              r2[0].numCores + r2[0].dvfsIndex);
}

TEST(Parties, RevertsReclaimThatCausedPressure)
{
    sim::MachineConfig m;
    PartiesConfig pcfg;
    pcfg.periodSteps = 1; // make every decide a control tick
    Parties mgr(pcfg, m, {spec()}, 4);
    // Comfortable tick: a reclaim happens (cores 18 -> 17).
    auto reqs = mgr.decide(telemetry(2.0));
    const auto reclaimed = reqs[0];
    // The reclaim hurt: latency at 96% of target. The pending reclaim
    // is reverted, and (being also the most pressured service) it gets
    // an upsize too.
    reqs = mgr.decide(telemetry(19.5));
    EXPECT_GE(reqs[0].numCores + reqs[0].dvfsIndex,
              reclaimed.numCores + reclaimed.dvfsIndex + 1);
}

TEST(Parties, Validation)
{
    sim::MachineConfig m;
    EXPECT_THROW(Parties(PartiesConfig{}, m, {}, 5),
                 twig::common::FatalError);
    Parties mgr(PartiesConfig{}, m, {spec()}, 6);
    EXPECT_THROW(mgr.decide(telemetry(5.0, 500.0, 50.0, 2)),
                 twig::common::FatalError);
}

TEST(Baselines, InitialRequestsAreStatic)
{
    sim::MachineConfig m;
    StaticManager mgr(m);
    const auto reqs = mgr.initialRequests(3, m);
    ASSERT_EQ(reqs.size(), 3u);
    for (const auto &r : reqs) {
        EXPECT_EQ(r.numCores, m.numCores);
        EXPECT_EQ(r.dvfsIndex, m.dvfs.maxIndex());
    }
}

TEST(Baselines, HeraclesTracksARealLoadRamp)
{
    // End-to-end on the simulator: Heracles must grow its allocation
    // as a ramp climbs and never let the service collapse.
    sim::MachineConfig machine;
    sim::Server server(machine, 61);
    const auto p = services::imgdnn();
    server.addService(p, std::make_unique<sim::RampLoad>(
                             p.maxLoadRps, 0.2, 0.85, 150));
    HeraclesConfig cfg;
    cfg.lockoutSteps = 30;
    Heracles mgr(cfg, machine, {p.name, p.qosTargetMs, p.maxLoadRps});

    twig::core::Mapper mapper(machine);
    auto reqs = mgr.initialRequests(1, machine);
    std::size_t early_cores = 0, late_cores = 0, violations = 0;
    for (int step = 0; step < 200; ++step) {
        const auto stats = server.runInterval(mapper.map(reqs));
        if (step >= 40 && step < 60)
            early_cores += reqs[0].numCores;
        if (step >= 180)
            late_cores += reqs[0].numCores;
        if (step >= 180 &&
            stats.services[0].p99Ms > 2.0 * p.qosTargetMs)
            ++violations;
        reqs = mgr.decide(stats);
    }
    EXPECT_GT(late_cores / 20, early_cores / 20);
    EXPECT_LT(violations, 5u);
}

TEST(Baselines, PartiesKeepsBothServicesAliveUnderContention)
{
    // End-to-end: PARTIES on a feasible colocated pair must keep both
    // services within 2x of their targets almost always.
    sim::MachineConfig machine;
    sim::Server server(machine, 62);
    const auto mt = services::masstree();
    const auto xa = services::xapian();
    server.addService(mt, std::make_unique<sim::FixedLoad>(
                              mt.maxLoadRps * 0.5, 0.5));
    server.addService(xa, std::make_unique<sim::FixedLoad>(
                              xa.maxLoadRps * 0.5, 0.5));
    Parties mgr(PartiesConfig{}, machine,
                {{mt.name, mt.qosTargetMs, mt.maxLoadRps},
                 {xa.name, xa.qosTargetMs, xa.maxLoadRps}},
                63);

    twig::core::Mapper mapper(machine);
    auto reqs = mgr.initialRequests(2, machine);
    std::size_t deep_violations = 0, n = 0;
    for (int step = 0; step < 250; ++step) {
        const auto stats = server.runInterval(mapper.map(reqs));
        if (step >= 50) {
            ++n;
            deep_violations +=
                stats.services[0].p99Ms > 2.0 * mt.qosTargetMs ||
                stats.services[1].p99Ms > 2.0 * xa.qosTargetMs;
        }
        reqs = mgr.decide(stats);
    }
    EXPECT_LT(deep_violations, n / 10);
}

TEST(Baselines, HipsterEndToEndMeetsQosAfterLearning)
{
    sim::MachineConfig machine;
    sim::Server server(machine, 64);
    const auto p = services::moses();
    server.addService(p, std::make_unique<sim::FixedLoad>(
                             p.maxLoadRps, 0.5));
    HipsterConfig cfg;
    cfg.learningPhaseSteps = 400;
    Hipster mgr(cfg, machine, {p.name, p.qosTargetMs, p.maxLoadRps},
                65);

    twig::core::Mapper mapper(machine);
    auto reqs = mgr.initialRequests(1, machine);
    std::size_t met = 0, n = 0;
    for (int step = 0; step < 700; ++step) {
        const auto stats = server.runInterval(mapper.map(reqs));
        if (step >= 550) {
            ++n;
            met += stats.services[0].p99Ms <= p.qosTargetMs;
        }
        reqs = mgr.decide(stats);
    }
    EXPECT_GT(100.0 * met / n, 70.0);
}
