/** @file Unit tests for the minimal JSON value type. */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hh"
#include "common/json.hh"

using twig::common::FatalError;
using twig::common::Json;

TEST(Json, ParseScalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_FALSE(Json::parse("false").asBool());
    EXPECT_DOUBLE_EQ(Json::parse("2.5").asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(Json::parse("-3").asNumber(), -3.0);
    EXPECT_DOUBLE_EQ(Json::parse("1e3").asNumber(), 1000.0);
    EXPECT_EQ(Json::parse("\"a\\nb\"").asString(), "a\nb");
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    Json j = Json::object();
    j.set("zeta", 1);
    j.set("alpha", 2);
    j.set("mid", 3);
    EXPECT_EQ(j.dump(), "{\"zeta\": 1, \"alpha\": 2, \"mid\": 3}");
    j.set("alpha", 9); // overwrite keeps the original position
    EXPECT_EQ(j.dump(), "{\"zeta\": 1, \"alpha\": 9, \"mid\": 3}");
}

TEST(Json, DumpParseDumpIsByteIdentical)
{
    Json j = Json::object();
    j.set("name", "round-trip");
    j.set("fraction", 0.5);
    j.set("steps", std::size_t{2000});
    Json arr = Json::array();
    arr.push(1);
    arr.push(2.25);
    arr.push("three");
    j.set("mixed", std::move(arr));
    Json nested = Json::object();
    nested.set("flag", true);
    nested.set("none", Json());
    j.set("nested", std::move(nested));

    const std::string once = j.dump();
    EXPECT_EQ(Json::parse(once).dump(), once);
    const std::string pretty = j.dump(2);
    EXPECT_EQ(Json::parse(pretty).dump(2), pretty);
}

TEST(Json, LargeIntegersKeepExactPrecision)
{
    // Above 2^53 a double drops low bits; seeds must survive exactly.
    const std::uint64_t seed = 7297471543603743092ULL;
    Json j(seed);
    EXPECT_EQ(j.asIndex(), seed);
    EXPECT_EQ(j.dump(), "7297471543603743092");
    EXPECT_EQ(Json::parse(j.dump()).asIndex(), seed);
    EXPECT_EQ(Json::parse("18446744073709551615").asIndex(),
              ~std::uint64_t{0});
}

TEST(Json, FractionalAndExponentLiteralsStayDoubles)
{
    EXPECT_DOUBLE_EQ(Json::parse("2.0").asNumber(), 2.0);
    EXPECT_EQ(Json::parse("2.0").asIndex(), 2u); // integral double is fine
    EXPECT_DOUBLE_EQ(Json::parse("5e2").asNumber(), 500.0);
    EXPECT_THROW(Json::parse("2.5").asIndex(), FatalError);
    EXPECT_THROW(Json::parse("-1").asIndex(), FatalError);
}

TEST(Json, TypedGettersWithDefaults)
{
    const Json j = Json::parse(
        "{\"s\": \"x\", \"n\": 1.5, \"i\": 7, \"b\": true}");
    EXPECT_EQ(j.stringOr("s", "d"), "x");
    EXPECT_EQ(j.stringOr("missing", "d"), "d");
    EXPECT_DOUBLE_EQ(j.numberOr("n", 0.0), 1.5);
    EXPECT_DOUBLE_EQ(j.numberOr("missing", 9.0), 9.0);
    EXPECT_EQ(j.indexOr("i", 0), 7u);
    EXPECT_EQ(j.indexOr("missing", 3), 3u);
    EXPECT_TRUE(j.boolOr("b", false));
    EXPECT_FALSE(j.boolOr("missing", false));
    EXPECT_EQ(j.find("missing"), nullptr);
    EXPECT_THROW(j.at("missing"), FatalError);
}

TEST(Json, StrictParserRejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), FatalError);
    EXPECT_THROW(Json::parse("{\"a\": 1,}"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\": 1, \"a\": 2}"), FatalError);
    EXPECT_THROW(Json::parse("[1, 2"), FatalError);
    EXPECT_THROW(Json::parse("{'a': 1}"), FatalError);
    EXPECT_THROW(Json::parse("nul"), FatalError);
}

TEST(Json, TypeMismatchesAreFatal)
{
    const Json j = Json::parse("{\"a\": [1]}");
    EXPECT_THROW(j.asNumber(), FatalError);
    EXPECT_THROW(j.at("a").asString(), FatalError);
    EXPECT_THROW(j.at("a").at("k"), FatalError);
    EXPECT_THROW(j.at(std::size_t{0}), FatalError);
    EXPECT_THROW(j.at("a").at(std::size_t{5}), FatalError);
}
