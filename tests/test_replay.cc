/** @file Unit tests for the sum tree and prioritised replay buffer. */

#include <gtest/gtest.h>

#include <map>

#include "common/error.hh"
#include "common/rng.hh"
#include "rl/replay.hh"

using namespace twig::rl;
using twig::common::Rng;

namespace {

Transition
makeTransition(float tag)
{
    Transition t;
    t.state = {tag, tag};
    t.actions = {{0, 0}};
    t.rewards = {static_cast<double>(tag)};
    t.nextState = {tag + 1, tag + 1};
    return t;
}

} // namespace

TEST(SumTree, SetGetTotal)
{
    SumTree tree(5);
    tree.set(0, 1.0);
    tree.set(3, 2.5);
    EXPECT_DOUBLE_EQ(tree.get(0), 1.0);
    EXPECT_DOUBLE_EQ(tree.get(3), 2.5);
    EXPECT_DOUBLE_EQ(tree.get(1), 0.0);
    EXPECT_DOUBLE_EQ(tree.total(), 3.5);
}

TEST(SumTree, OverwriteUpdatesTotal)
{
    SumTree tree(4);
    tree.set(2, 5.0);
    tree.set(2, 1.0);
    EXPECT_DOUBLE_EQ(tree.total(), 1.0);
}

TEST(SumTree, FindSelectsByPrefixSum)
{
    SumTree tree(4);
    tree.set(0, 1.0);
    tree.set(1, 2.0);
    tree.set(2, 3.0);
    tree.set(3, 4.0);
    EXPECT_EQ(tree.find(0.5), 0u);
    EXPECT_EQ(tree.find(1.5), 1u);
    EXPECT_EQ(tree.find(2.999), 1u);
    EXPECT_EQ(tree.find(3.0), 2u);
    EXPECT_EQ(tree.find(9.99), 3u);
}

TEST(SumTree, FindSkipsZeroPriorityLeaves)
{
    SumTree tree(4);
    tree.set(1, 1.0);
    tree.set(3, 1.0);
    EXPECT_EQ(tree.find(0.5), 1u);
    EXPECT_EQ(tree.find(1.5), 3u);
}

TEST(SumTree, Validation)
{
    SumTree tree(3);
    EXPECT_THROW(tree.set(3, 1.0), twig::common::FatalError);
    EXPECT_THROW(tree.set(0, -1.0), twig::common::FatalError);
    EXPECT_THROW(tree.get(5), twig::common::FatalError);
    EXPECT_THROW(SumTree(0), twig::common::FatalError);
}

TEST(Replay, AddAndSize)
{
    ReplayConfig cfg;
    cfg.capacity = 8;
    PrioritizedReplay buf(cfg);
    EXPECT_TRUE(buf.empty());
    buf.add(makeTransition(1));
    buf.add(makeTransition(2));
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_FLOAT_EQ(buf.at(0).state[0], 1.0f);
    EXPECT_FLOAT_EQ(buf.at(1).state[0], 2.0f);
}

TEST(Replay, CircularOverwrite)
{
    ReplayConfig cfg;
    cfg.capacity = 3;
    PrioritizedReplay buf(cfg);
    for (int i = 0; i < 5; ++i)
        buf.add(makeTransition(static_cast<float>(i)));
    EXPECT_EQ(buf.size(), 3u);
    // Slots 0 and 1 hold the newest items (3, 4); slot 2 holds 2.
    EXPECT_FLOAT_EQ(buf.at(0).state[0], 3.0f);
    EXPECT_FLOAT_EQ(buf.at(1).state[0], 4.0f);
    EXPECT_FLOAT_EQ(buf.at(2).state[0], 2.0f);
}

TEST(Replay, SampleReturnsValidIndicesAndWeights)
{
    ReplayConfig cfg;
    cfg.capacity = 64;
    PrioritizedReplay buf(cfg);
    for (int i = 0; i < 20; ++i)
        buf.add(makeTransition(static_cast<float>(i)));
    Rng rng(3);
    const auto s = buf.sample(16, 0.5, rng);
    ASSERT_EQ(s.indices.size(), 16u);
    ASSERT_EQ(s.weights.size(), 16u);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_LT(s.indices[i], 20u);
        EXPECT_GT(s.weights[i], 0.0);
        EXPECT_LE(s.weights[i], 1.0 + 1e-12);
    }
}

TEST(Replay, HighPriorityItemsSampledMoreOften)
{
    ReplayConfig cfg;
    cfg.capacity = 16;
    cfg.alpha = 1.0;
    PrioritizedReplay buf(cfg);
    for (int i = 0; i < 10; ++i)
        buf.add(makeTransition(static_cast<float>(i)));
    // Give index 7 a huge TD error, everything else tiny.
    std::vector<std::size_t> idx;
    std::vector<double> td;
    for (std::size_t i = 0; i < 10; ++i) {
        idx.push_back(i);
        td.push_back(i == 7 ? 50.0 : 0.01);
    }
    buf.updatePriorities(idx, td);

    Rng rng(4);
    std::map<std::size_t, int> counts;
    for (int round = 0; round < 200; ++round) {
        const auto s = buf.sample(8, 0.4, rng);
        for (auto i : s.indices)
            ++counts[i];
    }
    int other_max = 0;
    for (const auto &[i, c] : counts)
        if (i != 7)
            other_max = std::max(other_max, c);
    EXPECT_GT(counts[7], 10 * other_max);
}

TEST(Replay, UniformWhenAlphaZero)
{
    ReplayConfig cfg;
    cfg.capacity = 16;
    cfg.alpha = 0.0; // priority^0 = 1: uniform sampling
    PrioritizedReplay buf(cfg);
    for (int i = 0; i < 8; ++i)
        buf.add(makeTransition(static_cast<float>(i)));
    buf.updatePriorities({0}, {1000.0});

    Rng rng(5);
    std::map<std::size_t, int> counts;
    for (int round = 0; round < 500; ++round)
        for (auto i : buf.sample(8, 1.0, rng).indices)
            ++counts[i];
    // All eight indices drawn with similar frequency.
    for (const auto &[i, c] : counts)
        EXPECT_NEAR(c, 500, 200) << "index " << i;
}

TEST(Replay, WeightsCompensatePriority)
{
    ReplayConfig cfg;
    cfg.capacity = 8;
    cfg.alpha = 1.0;
    PrioritizedReplay buf(cfg);
    buf.add(makeTransition(0));
    buf.add(makeTransition(1));
    buf.updatePriorities({0, 1}, {10.0, 1.0});

    Rng rng(6);
    const auto s = buf.sample(64, 1.0, rng);
    double w_high = 0.0, w_low = 0.0;
    for (std::size_t i = 0; i < s.indices.size(); ++i) {
        (s.indices[i] == 0 ? w_high : w_low) = s.weights[i];
    }
    // Full importance correction: frequently-sampled item gets the
    // smaller weight.
    EXPECT_LT(w_high, w_low);
}

TEST(Replay, SampleFromEmptyThrows)
{
    PrioritizedReplay buf({});
    Rng rng(7);
    EXPECT_THROW(buf.sample(4, 0.4, rng), twig::common::FatalError);
}

TEST(Replay, UpdateValidation)
{
    PrioritizedReplay buf({});
    buf.add(makeTransition(0));
    EXPECT_THROW(buf.updatePriorities({0, 1}, {1.0}),
                 twig::common::FatalError);
}
