/** @file Unit tests for NN layers, including numerical gradient checks. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hh"
#include "nn/layers.hh"

using namespace twig::nn;
using twig::common::Rng;

namespace {

/** Scalar loss L = sum of squares of the layer output (for checks). */
float
sumSquares(const Matrix &y)
{
    float s = 0.0f;
    for (float v : y.raw())
        s += v * v;
    return s;
}

/** dL/dy for the sum-of-squares loss. */
Matrix
sumSquaresGrad(const Matrix &y)
{
    Matrix dy(y.rows(), y.cols());
    for (std::size_t i = 0; i < y.size(); ++i)
        dy.raw()[i] = 2.0f * y.raw()[i];
    return dy;
}

} // namespace

TEST(Linear, ForwardMatchesManualComputation)
{
    Rng rng(1);
    Linear lin(2, 2, rng);
    lin.mutableWeight()(0, 0) = 1.0f;
    lin.mutableWeight()(0, 1) = 2.0f;
    lin.mutableWeight()(1, 0) = 3.0f;
    lin.mutableWeight()(1, 1) = 4.0f;
    lin.mutableBias() = {0.5f, -0.5f};

    Matrix x(1, 2), y;
    x(0, 0) = 1.0f;
    x(0, 1) = 2.0f;
    lin.forward(x, y);
    // y = x W + b = [1*1+2*3+0.5, 1*2+2*4-0.5] = [7.5, 9.5]
    EXPECT_FLOAT_EQ(y(0, 0), 7.5f);
    EXPECT_FLOAT_EQ(y(0, 1), 9.5f);
}

TEST(Linear, InputGradientMatchesNumerical)
{
    Rng rng(2);
    Linear lin(4, 3, rng);
    Matrix x(2, 4);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.raw()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

    Matrix y;
    lin.forward(x, y);
    Matrix dx;
    lin.backward(sumSquaresGrad(y), dx);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Matrix xp = x, xm = x;
        xp.raw()[i] += eps;
        xm.raw()[i] -= eps;
        Matrix yp, ym;
        lin.forward(xp, yp);
        const float lp = sumSquares(yp);
        lin.forward(xm, ym);
        const float lm = sumSquares(ym);
        const float numeric = (lp - lm) / (2.0f * eps);
        EXPECT_NEAR(dx.raw()[i], numeric, 2e-2f)
            << "input grad mismatch at " << i;
    }
}

TEST(Linear, WeightGradientMatchesNumerical)
{
    Rng rng(3);
    Linear lin(3, 2, rng);
    Matrix x(2, 3);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.raw()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

    // Analytic weight gradient via a probe: perturb each weight and
    // compare against dL/dW = x^T dy accumulated by backward().
    Matrix y;
    lin.forward(x, y);
    Matrix dx;
    lin.backward(sumSquaresGrad(y), dx);
    // Recover the accumulated gradient through a unit Adam-free probe:
    // gradNorm is > 0 and finite.
    EXPECT_GT(lin.gradNorm(), 0.0f);

    const float eps = 1e-3f;
    // Check one representative weight numerically.
    Matrix &w = lin.mutableWeight();
    const float orig = w(1, 0);
    w(1, 0) = orig + eps;
    Matrix yp;
    lin.forward(x, yp);
    const float lp = sumSquares(yp);
    w(1, 0) = orig - eps;
    Matrix ym;
    lin.forward(x, ym);
    const float lm = sumSquares(ym);
    w(1, 0) = orig;
    const float numeric = (lp - lm) / (2.0f * eps);

    // Extract the analytic value: re-run forward/backward from clean
    // gradients so the accumulator holds exactly one pass.
    lin.zeroGrad();
    Matrix y2;
    lin.forward(x, y2);
    Matrix dx2;
    lin.backward(sumSquaresGrad(y2), dx2);
    // dL/dW[1][0] = sum_batch x[:,1] * dy[:,0]
    const Matrix dy = sumSquaresGrad(y2);
    float analytic = 0.0f;
    for (std::size_t r = 0; r < x.rows(); ++r)
        analytic += x(r, 1) * dy(r, 0);
    EXPECT_NEAR(analytic, numeric, 2e-2f);
}

TEST(Linear, GradientsAccumulateAcrossBackwardCalls)
{
    Rng rng(4);
    Linear lin(2, 2, rng);
    Matrix x(1, 2, 1.0f), y, dx;
    lin.forward(x, y);
    Matrix dy(1, 2, 1.0f);
    lin.backward(dy, dx);
    const float norm1 = lin.gradNorm();
    lin.forward(x, y);
    lin.backward(dy, dx);
    EXPECT_NEAR(lin.gradNorm(), 2.0f * norm1, 1e-4f);
}

TEST(Linear, ScaleGradHalvesNorm)
{
    Rng rng(5);
    Linear lin(2, 2, rng);
    Matrix x(1, 2, 1.0f), y, dx;
    lin.forward(x, y);
    Matrix dy(1, 2, 1.0f);
    lin.backward(dy, dx);
    const float norm = lin.gradNorm();
    lin.scaleGrad(0.5f);
    EXPECT_NEAR(lin.gradNorm(), 0.5f * norm, 1e-5f);
}

TEST(Linear, ZeroGradClears)
{
    Rng rng(6);
    Linear lin(2, 2, rng);
    Matrix x(1, 2, 1.0f), y, dx;
    lin.forward(x, y);
    Matrix dy(1, 2, 1.0f);
    lin.backward(dy, dx);
    lin.zeroGrad();
    EXPECT_FLOAT_EQ(lin.gradNorm(), 0.0f);
}

TEST(Linear, AdamStepReducesQuadraticLoss)
{
    // Minimise ||x W + b - t||^2 for fixed x, t.
    Rng rng(7);
    Linear lin(3, 2, rng);
    Matrix x(4, 3);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.raw()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    Matrix target(4, 2);
    for (std::size_t i = 0; i < target.size(); ++i)
        target.raw()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

    AdamConfig adam;
    adam.learningRate = 0.05f;
    float first_loss = 0.0f, last_loss = 0.0f;
    for (std::size_t t = 1; t <= 200; ++t) {
        Matrix y, dx;
        lin.forward(x, y);
        Matrix dy(y.rows(), y.cols());
        float loss = 0.0f;
        for (std::size_t i = 0; i < y.size(); ++i) {
            const float e = y.raw()[i] - target.raw()[i];
            loss += e * e;
            dy.raw()[i] = 2.0f * e;
        }
        if (t == 1)
            first_loss = loss;
        last_loss = loss;
        lin.backward(dy, dx);
        lin.adamStep(adam, t);
    }
    EXPECT_LT(last_loss, 0.01f * first_loss);
}

TEST(Linear, CopyParamsMakesOutputsEqual)
{
    Rng rng(8);
    Linear a(3, 3, rng), b(3, 3, rng);
    b.copyParamsFrom(a);
    Matrix x(2, 3, 0.7f), ya, yb;
    a.forward(x, ya);
    b.forward(x, yb);
    for (std::size_t i = 0; i < ya.size(); ++i)
        EXPECT_FLOAT_EQ(ya.raw()[i], yb.raw()[i]);
}

TEST(Linear, ReinitializeChangesWeights)
{
    Rng rng(9);
    Linear lin(4, 4, rng);
    const Matrix before = lin.weight();
    lin.reinitialize(rng);
    std::size_t changed = 0;
    for (std::size_t i = 0; i < before.size(); ++i)
        changed += before.raw()[i] != lin.weight().raw()[i];
    EXPECT_GT(changed, before.size() / 2);
}

TEST(Linear, SaveLoadRoundTrip)
{
    Rng rng(10);
    Linear a(3, 2, rng), b(3, 2, rng);
    std::stringstream ss;
    a.save(ss);
    b.load(ss);
    Matrix x(1, 3, 0.3f), ya, yb;
    a.forward(x, ya);
    b.forward(x, yb);
    for (std::size_t i = 0; i < ya.size(); ++i)
        EXPECT_FLOAT_EQ(ya.raw()[i], yb.raw()[i]);
}

TEST(Linear, LoadTruncatedStreamThrows)
{
    Rng rng(11);
    Linear a(3, 2, rng);
    std::stringstream ss("short");
    EXPECT_THROW(a.load(ss), twig::common::FatalError);
}

TEST(ReLU, ForwardClampsNegatives)
{
    ReLU relu;
    Matrix x(1, 4), y;
    x(0, 0) = -1.0f;
    x(0, 1) = 0.0f;
    x(0, 2) = 2.0f;
    x(0, 3) = -0.1f;
    relu.forward(x, y);
    EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(y(0, 2), 2.0f);
    EXPECT_FLOAT_EQ(y(0, 3), 0.0f);
}

TEST(ReLU, BackwardMasksGradient)
{
    ReLU relu;
    Matrix x(1, 3), y;
    x(0, 0) = -1.0f;
    x(0, 1) = 1.0f;
    x(0, 2) = 3.0f;
    relu.forward(x, y);
    Matrix dy(1, 3, 5.0f), dx;
    relu.backward(dy, dx);
    EXPECT_FLOAT_EQ(dx(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dx(0, 1), 5.0f);
    EXPECT_FLOAT_EQ(dx(0, 2), 5.0f);
}

TEST(Dropout, IdentityInEvalMode)
{
    Rng rng(12);
    Dropout drop(0.5f);
    Matrix x(2, 3, 1.5f), y;
    drop.forward(x, y, false, rng);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_FLOAT_EQ(y.raw()[i], 1.5f);
}

TEST(Dropout, ZeroRateIsIdentityEvenInTrain)
{
    Rng rng(13);
    Dropout drop(0.0f);
    Matrix x(2, 3, 2.0f), y;
    drop.forward(x, y, true, rng);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_FLOAT_EQ(y.raw()[i], 2.0f);
}

TEST(Dropout, PreservesExpectedValue)
{
    Rng rng(14);
    Dropout drop(0.4f);
    Matrix x(1, 10000, 1.0f), y;
    drop.forward(x, y, true, rng);
    double sum = 0.0;
    std::size_t zeros = 0;
    for (float v : y.raw()) {
        sum += v;
        zeros += v == 0.0f;
    }
    // Inverted dropout: mean preserved, ~40% of entries zeroed.
    EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.4, 0.03);
}

TEST(Dropout, BackwardUsesSameMask)
{
    Rng rng(15);
    Dropout drop(0.5f);
    Matrix x(1, 100, 1.0f), y;
    drop.forward(x, y, true, rng);
    Matrix dy(1, 100, 1.0f), dx;
    drop.backward(dy, dx);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FLOAT_EQ(dx(0, i), y(0, i)); // same mask & scale
}
