/** @file Unit tests for the BDQ learner's robustness features:
 * reward scaling/clipping, Huber TD clipping, explore holds and the
 * sticky argmax. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "rl/bdq_learner.hh"

using namespace twig::rl;
using twig::common::Rng;

namespace {

BdqLearnerConfig
smallLearner()
{
    BdqLearnerConfig cfg;
    cfg.net.numAgents = 1;
    cfg.net.stateDimPerAgent = 3;
    cfg.net.trunkHidden = {16};
    cfg.net.agentHeadHidden = 8;
    cfg.net.branchHidden = 8;
    cfg.net.branchActions = {4, 3};
    cfg.net.dropoutRate = 0.0f;
    cfg.minibatch = 8;
    cfg.minReplayBeforeTraining = 8;
    cfg.replay.capacity = 512;
    cfg.epsilonMidStep = 100;
    cfg.epsilonFinalStep = 200;
    return cfg;
}

Transition
transition(double reward)
{
    Transition t;
    t.state = {0.5f, 0.5f, 0.5f};
    t.actions = {{1, 1}};
    t.rewards = {reward};
    t.nextState = {0.5f, 0.5f, 0.5f};
    return t;
}

} // namespace

TEST(LearnerFeatures, RewardClipBoundsTheTarget)
{
    // With scale 0.1 and clip at -2, a -1000 reward behaves exactly
    // like a -20 reward: identical training trajectories.
    auto cfg = smallLearner();
    cfg.rewardScale = 0.1;
    cfg.rewardClipMin = -2.0;

    Rng r1(5), r2(5);
    BdqLearner a(cfg, r1), b(cfg, r2);
    for (int i = 0; i < 64; ++i) {
        a.observe(transition(-1000.0));
        b.observe(transition(-20.0));
    }
    const std::vector<float> s = {0.5f, 0.5f, 0.5f};
    const auto qa = a.onlineNetwork().qValues(s);
    const auto qb = b.onlineNetwork().qValues(s);
    for (std::size_t d = 0; d < 2; ++d)
        for (std::size_t i = 0; i < qa.q[0][d].size(); ++i)
            EXPECT_FLOAT_EQ(qa.q[0][d].raw()[i], qb.q[0][d].raw()[i]);
}

TEST(LearnerFeatures, HuberBoundsTheGradientStep)
{
    // A single gigantic TD error must not blow up the network: with
    // Huber clipping the Q values stay finite and bounded.
    auto cfg = smallLearner();
    cfg.huberDelta = 1.0;
    cfg.net.adam.learningRate = 0.01f;
    Rng rng(6);
    BdqLearner learner(cfg, rng);
    for (int i = 0; i < 16; ++i)
        learner.observe(transition(0.0));
    learner.observe(transition(1e9));
    for (int i = 0; i < 32; ++i)
        learner.observe(transition(0.0));

    const std::vector<float> s = {0.5f, 0.5f, 0.5f};
    const auto q = learner.onlineNetwork().qValues(s);
    for (std::size_t d = 0; d < 2; ++d)
        for (float v : q.q[0][d].raw())
            EXPECT_TRUE(std::isfinite(v));
}

TEST(LearnerFeatures, ExploreHoldRepeatsTheRandomAction)
{
    auto cfg = smallLearner();
    cfg.exploreHoldSteps = 4;
    // Epsilon stays 1.0 for the whole test window.
    cfg.epsilonMidStep = 1000;
    cfg.epsilonFinalStep = 2000;
    Rng rng(7);
    BdqLearner learner(cfg, rng);
    const std::vector<float> s = {0.1f, 0.2f, 0.3f};

    // With eps = 1 every non-held step starts a new hold; actions must
    // therefore repeat in blocks of exploreHoldSteps.
    std::vector<twig::nn::BranchActions> seq;
    for (int i = 0; i < 16; ++i)
        seq.push_back(learner.selectActions(s)[0]);
    for (int block = 0; block < 16; block += 4) {
        for (int i = 1; i < 4; ++i)
            EXPECT_EQ(seq[block + i], seq[block]) << "block " << block;
    }
}

TEST(LearnerFeatures, HoldsDisabledAtLowEpsilon)
{
    auto cfg = smallLearner();
    cfg.exploreHoldSteps = 4;
    cfg.epsilonMidStep = 10;
    cfg.epsilonFinalStep = 20;
    cfg.epsilonFinal = 0.01;
    Rng rng(8);
    BdqLearner learner(cfg, rng);
    for (int i = 0; i < 30; ++i)
        learner.observe(transition(0.0));
    EXPECT_LT(learner.epsilon(), 0.05);
    // At eps = 0.01 the greedy action dominates; with holds disabled
    // the sequence should be overwhelmingly the greedy action, i.e.
    // no 4-step random blocks. Just exercise the code path and check
    // the actions stay in range.
    const std::vector<float> s = {0.1f, 0.2f, 0.3f};
    for (int i = 0; i < 50; ++i) {
        const auto a = learner.selectActions(s)[0];
        EXPECT_LT(a[0], 4u);
        EXPECT_LT(a[1], 3u);
    }
}

TEST(LearnerFeatures, StickyArgmaxSuppressesNearTieFlips)
{
    auto cfg = smallLearner();
    cfg.actionStickiness = 1e6; // absurdly sticky: never change
    cfg.epsilonMidStep = 1000;  // but force greedy by...
    cfg.epsilonFinalStep = 2000;
    Rng rng(9);
    BdqLearner learner(cfg, rng);

    // Drive epsilon to ~1; use greedyActions for the pure policy and
    // selectActions' sticky layer via epsilon 0 by re-making config.
    auto cfg2 = smallLearner();
    cfg2.actionStickiness = 1e6;
    cfg2.epsilonMidStep = 1;
    cfg2.epsilonFinalStep = 2;
    cfg2.epsilonMid = 0.0;
    cfg2.epsilonFinal = 0.0;
    Rng rng2(10);
    BdqLearner sticky(cfg2, rng2);
    for (int i = 0; i < 5; ++i)
        sticky.observe(transition(0.0));

    const std::vector<float> s1 = {0.1f, 0.2f, 0.3f};
    const std::vector<float> s2 = {0.9f, 0.8f, 0.7f};
    const auto first = sticky.selectActions(s1);
    // Even on a different state (different argmax), an infinitely
    // sticky policy keeps its previous choice.
    const auto second = sticky.selectActions(s2);
    EXPECT_EQ(first, second);
}

TEST(LearnerFeatures, ZeroStickinessTracksTheArgmax)
{
    auto cfg = smallLearner();
    cfg.actionStickiness = 0.0;
    cfg.epsilonMidStep = 1;
    cfg.epsilonFinalStep = 2;
    cfg.epsilonMid = 0.0;
    cfg.epsilonFinal = 0.0;
    Rng rng(11);
    BdqLearner learner(cfg, rng);
    for (int i = 0; i < 5; ++i)
        learner.observe(transition(0.0));
    const std::vector<float> s = {0.3f, 0.6f, 0.9f};
    EXPECT_EQ(learner.selectActions(s), learner.greedyActions(s));
}

TEST(LearnerFeatures, GradientStepsPerTrainMultipliesUpdates)
{
    auto base = smallLearner();
    base.gradientStepsPerTrain = 1;
    auto heavy = smallLearner();
    heavy.gradientStepsPerTrain = 4;

    Rng r1(12), r2(12);
    BdqLearner a(base, r1), b(heavy, r2);
    // Feed a constant positive reward for one specific action pair;
    // the heavier trainer should move its Q estimate further in the
    // same number of environment steps.
    const std::vector<float> s = {0.5f, 0.5f, 0.5f};
    const float qa0 = a.onlineNetwork().qValues(s).q[0][0](0, 1);
    for (int i = 0; i < 40; ++i) {
        a.observe(transition(5.0));
        b.observe(transition(5.0));
    }
    const float qa = a.onlineNetwork().qValues(s).q[0][0](0, 1);
    const float qb = b.onlineNetwork().qValues(s).q[0][0](0, 1);
    EXPECT_GT(qb - qa0, qa - qa0);
}
