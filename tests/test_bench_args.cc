/** @file Unit tests for the bench argument parser (bench_util.hh). */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.hh"

using twig::bench::BenchArgs;

namespace {

BenchArgs::ParseResult
tryParse(std::vector<std::string> argv,
         const std::vector<std::string> &extra = {})
{
    argv.insert(argv.begin(), "bench");
    std::vector<char *> raw;
    for (auto &arg : argv)
        raw.push_back(arg.data());
    return BenchArgs::tryParse(static_cast<int>(raw.size()), raw.data(),
                               extra);
}

} // namespace

TEST(BenchArgs, Defaults)
{
    const auto res = tryParse({});
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(res.args.full);
    EXPECT_EQ(res.args.seed, 42u);
    EXPECT_EQ(res.args.jobs, 1u);
    EXPECT_TRUE(res.args.extra.empty());
}

TEST(BenchArgs, ParsesKnownFlags)
{
    const auto res = tryParse({"--full", "--seed", "7", "--jobs", "3"});
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.args.full);
    EXPECT_EQ(res.args.seed, 7u);
    EXPECT_EQ(res.args.jobs, 3u);
}

TEST(BenchArgs, RejectsZeroJobs)
{
    const auto res = tryParse({"--jobs", "0"});
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("--jobs"), std::string::npos);
}

TEST(BenchArgs, RejectsNegativeAndNonNumericCounts)
{
    EXPECT_FALSE(tryParse({"--jobs", "-2"}).ok());
    EXPECT_FALSE(tryParse({"--seed", "-1"}).ok());
    EXPECT_FALSE(tryParse({"--seed", "abc"}).ok());
    EXPECT_FALSE(tryParse({"--jobs", "4x"}).ok());
    EXPECT_FALSE(tryParse({"--jobs", ""}).ok());
    // Way beyond 2^64: must fail, not silently wrap.
    EXPECT_FALSE(tryParse({"--seed", "99999999999999999999999"}).ok());
}

TEST(BenchArgs, RejectsUnknownFlagsAndMissingValues)
{
    const auto unknown = tryParse({"--bogus"});
    EXPECT_FALSE(unknown.ok());
    EXPECT_NE(unknown.error.find("--bogus"), std::string::npos);

    EXPECT_FALSE(tryParse({"--seed"}).ok());
    EXPECT_FALSE(tryParse({"--jobs"}).ok());
}

TEST(BenchArgs, ParsesDomains)
{
    // 0 means "bench default" and only arises by omission — an
    // explicit --domains 0 is rejected, like --jobs 0.
    EXPECT_EQ(tryParse({}).args.domains, 0u);
    const auto res = tryParse({"--domains", "8"});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.args.domains, 8u);
}

TEST(BenchArgs, RejectsBadDomains)
{
    const auto zero = tryParse({"--domains", "0"});
    EXPECT_FALSE(zero.ok());
    EXPECT_NE(zero.error.find("--domains"), std::string::npos);
    EXPECT_FALSE(tryParse({"--domains", "-3"}).ok());
    EXPECT_FALSE(tryParse({"--domains", "2x"}).ok());
    EXPECT_FALSE(tryParse({"--domains"}).ok());
}

TEST(BenchArgs, ExtraValueFlagsAreAllowlisted)
{
    // Not allowlisted: rejected like any unknown flag.
    EXPECT_FALSE(tryParse({"--out", "x.json"}).ok());

    const auto res = tryParse({"--out", "x.json", "--seed", "5"},
                              {"--out"});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.args.extra.at("--out"), "x.json");
    EXPECT_EQ(res.args.seed, 5u);

    EXPECT_FALSE(tryParse({"--out"}, {"--out"}).ok());
}

TEST(BenchArgs, HelpIsNotAnError)
{
    const auto help = tryParse({"--help"});
    EXPECT_TRUE(help.helpRequested);
    EXPECT_TRUE(help.error.empty());
    EXPECT_FALSE(help.ok()); // callers must not run the bench
    EXPECT_TRUE(tryParse({"-h"}).helpRequested);
}

TEST(BenchArgs, ServeFlagDefaults)
{
    const auto res = tryParse({});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.args.listen, "127.0.0.1");
    EXPECT_EQ(res.args.port, 0u);
    EXPECT_DOUBLE_EQ(res.args.durationS, 2.0);
    EXPECT_EQ(res.args.connections, 8u);
}

TEST(BenchArgs, ParsesServeFlags)
{
    const auto res = tryParse({"--listen", "0.0.0.0", "--port", "7411",
                               "--duration-s", "3.5", "--connections",
                               "16"});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.args.listen, "0.0.0.0");
    EXPECT_EQ(res.args.port, 7411u);
    EXPECT_DOUBLE_EQ(res.args.durationS, 3.5);
    EXPECT_EQ(res.args.connections, 16u);
}

TEST(BenchArgs, PortZeroMeansEphemeral)
{
    const auto res = tryParse({"--port", "0"});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.args.port, 0u);
}

TEST(BenchArgs, RejectsOutOfRangePorts)
{
    const auto res = tryParse({"--port", "65536"});
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("--port"), std::string::npos);
    EXPECT_FALSE(tryParse({"--port", "99999999"}).ok());
    EXPECT_FALSE(tryParse({"--port", "-1"}).ok());
    EXPECT_FALSE(tryParse({"--port", "http"}).ok());
    EXPECT_TRUE(tryParse({"--port", "65535"}).ok());
}

TEST(BenchArgs, RejectsNonPositiveDurations)
{
    EXPECT_FALSE(tryParse({"--duration-s", "0"}).ok());
    EXPECT_FALSE(tryParse({"--duration-s", "-1.5"}).ok());
    EXPECT_FALSE(tryParse({"--duration-s", "soon"}).ok());
    const auto missing = tryParse({"--duration-s"});
    EXPECT_FALSE(missing.ok());
    EXPECT_NE(missing.error.find("--duration-s"), std::string::npos);
}

TEST(BenchArgs, RejectsZeroConnectionsAndEmptyListen)
{
    const auto res = tryParse({"--connections", "0"});
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("--connections"), std::string::npos);
    EXPECT_FALSE(tryParse({"--listen", ""}).ok());
}

TEST(BenchArgs, ParsesAutoscaleBounds)
{
    // 0:0 means "bench default" and only arises by omission.
    EXPECT_EQ(tryParse({}).args.autoscaleMin, 0u);
    EXPECT_EQ(tryParse({}).args.autoscaleMax, 0u);
    const auto res = tryParse({"--autoscale", "2:6"});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.args.autoscaleMin, 2u);
    EXPECT_EQ(res.args.autoscaleMax, 6u);
    // MIN == MAX pins the fleet size but keeps the billing path.
    EXPECT_TRUE(tryParse({"--autoscale", "4:4"}).ok());
}

TEST(BenchArgs, RejectsBadAutoscaleBounds)
{
    const auto inverted = tryParse({"--autoscale", "6:2"});
    EXPECT_FALSE(inverted.ok());
    EXPECT_NE(inverted.error.find("--autoscale"), std::string::npos);
    EXPECT_FALSE(tryParse({"--autoscale", "0:4"}).ok());
    EXPECT_FALSE(tryParse({"--autoscale", "4"}).ok());
    EXPECT_FALSE(tryParse({"--autoscale", "2:6:8"}).ok());
    EXPECT_FALSE(tryParse({"--autoscale", "-2:6"}).ok());
    EXPECT_FALSE(tryParse({"--autoscale", "two:six"}).ok());
    EXPECT_FALSE(tryParse({"--autoscale", ":"}).ok());
    EXPECT_FALSE(tryParse({"--autoscale"}).ok());
}

TEST(BenchArgs, ParsesCostPerNodeHour)
{
    EXPECT_DOUBLE_EQ(tryParse({}).args.costPerNodeHour, 0.0);
    const auto res = tryParse({"--cost-per-node-hour", "1.25"});
    ASSERT_TRUE(res.ok());
    EXPECT_DOUBLE_EQ(res.args.costPerNodeHour, 1.25);
    // A free tier is a valid override.
    EXPECT_TRUE(tryParse({"--cost-per-node-hour", "0"}).ok());
}

TEST(BenchArgs, RejectsBadCostPerNodeHour)
{
    const auto negative = tryParse({"--cost-per-node-hour", "-1"});
    EXPECT_FALSE(negative.ok());
    EXPECT_NE(negative.error.find("--cost-per-node-hour"),
              std::string::npos);
    EXPECT_FALSE(tryParse({"--cost-per-node-hour", "cheap"}).ok());
    EXPECT_FALSE(tryParse({"--cost-per-node-hour", "1.5x"}).ok());
    EXPECT_FALSE(tryParse({"--cost-per-node-hour"}).ok());
}

TEST(BenchArgs, ParsesNodeClasses)
{
    EXPECT_TRUE(tryParse({}).args.nodeClasses.empty());
    const auto res = tryParse(
        {"--node-class", "gen2", "--node-class", "gen1"});
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.args.nodeClasses.size(), 2u);
    EXPECT_EQ(res.args.nodeClasses[0], "gen2");
    EXPECT_EQ(res.args.nodeClasses[1], "gen1");
}

TEST(BenchArgs, RejectsUnknownAndDuplicateNodeClasses)
{
    const auto unknown = tryParse({"--node-class", "quantum9"});
    EXPECT_FALSE(unknown.ok());
    EXPECT_NE(unknown.error.find("quantum9"), std::string::npos);

    const auto dup =
        tryParse({"--node-class", "gen1", "--node-class", "gen1"});
    EXPECT_FALSE(dup.ok());
    EXPECT_NE(dup.error.find("gen1"), std::string::npos);

    EXPECT_FALSE(tryParse({"--node-class", ""}).ok());
    EXPECT_FALSE(tryParse({"--node-class"}).ok());
}
