/** @file Unit tests for the bench argument parser (bench_util.hh). */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.hh"

using twig::bench::BenchArgs;

namespace {

BenchArgs::ParseResult
tryParse(std::vector<std::string> argv,
         const std::vector<std::string> &extra = {})
{
    argv.insert(argv.begin(), "bench");
    std::vector<char *> raw;
    for (auto &arg : argv)
        raw.push_back(arg.data());
    return BenchArgs::tryParse(static_cast<int>(raw.size()), raw.data(),
                               extra);
}

} // namespace

TEST(BenchArgs, Defaults)
{
    const auto res = tryParse({});
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(res.args.full);
    EXPECT_EQ(res.args.seed, 42u);
    EXPECT_EQ(res.args.jobs, 1u);
    EXPECT_TRUE(res.args.extra.empty());
}

TEST(BenchArgs, ParsesKnownFlags)
{
    const auto res = tryParse({"--full", "--seed", "7", "--jobs", "3"});
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.args.full);
    EXPECT_EQ(res.args.seed, 7u);
    EXPECT_EQ(res.args.jobs, 3u);
}

TEST(BenchArgs, RejectsZeroJobs)
{
    const auto res = tryParse({"--jobs", "0"});
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("--jobs"), std::string::npos);
}

TEST(BenchArgs, RejectsNegativeAndNonNumericCounts)
{
    EXPECT_FALSE(tryParse({"--jobs", "-2"}).ok());
    EXPECT_FALSE(tryParse({"--seed", "-1"}).ok());
    EXPECT_FALSE(tryParse({"--seed", "abc"}).ok());
    EXPECT_FALSE(tryParse({"--jobs", "4x"}).ok());
    EXPECT_FALSE(tryParse({"--jobs", ""}).ok());
    // Way beyond 2^64: must fail, not silently wrap.
    EXPECT_FALSE(tryParse({"--seed", "99999999999999999999999"}).ok());
}

TEST(BenchArgs, RejectsUnknownFlagsAndMissingValues)
{
    const auto unknown = tryParse({"--bogus"});
    EXPECT_FALSE(unknown.ok());
    EXPECT_NE(unknown.error.find("--bogus"), std::string::npos);

    EXPECT_FALSE(tryParse({"--seed"}).ok());
    EXPECT_FALSE(tryParse({"--jobs"}).ok());
}

TEST(BenchArgs, ExtraValueFlagsAreAllowlisted)
{
    // Not allowlisted: rejected like any unknown flag.
    EXPECT_FALSE(tryParse({"--out", "x.json"}).ok());

    const auto res = tryParse({"--out", "x.json", "--seed", "5"},
                              {"--out"});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.args.extra.at("--out"), "x.json");
    EXPECT_EQ(res.args.seed, 5u);

    EXPECT_FALSE(tryParse({"--out"}, {"--out"}).ok());
}

TEST(BenchArgs, HelpIsNotAnError)
{
    const auto help = tryParse({"--help"});
    EXPECT_TRUE(help.helpRequested);
    EXPECT_TRUE(help.error.empty());
    EXPECT_FALSE(help.ok()); // callers must not run the bench
    EXPECT_TRUE(tryParse({"-h"}).helpRequested);
}
