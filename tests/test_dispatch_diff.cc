/**
 * @file
 * Randomized differential test of the calendar-queue dispatch against
 * the reference path, at the RequestQueueSim level.
 *
 * tests/test_sim_ab.cc proves whole-server bit-identity on realistic
 * colocation runs; this file attacks the dispatch core directly with
 * adversarial arrival patterns — bursts into empty queues, strings of
 * empty intervals, single-core classes, zero-core intervals,
 * sustained saturation, tiny backlog caps — plus fuzzed random
 * schedules. Every interval's result is compared with exact equality
 * (operator== on doubles, no tolerance), including the per-request
 * latenciesMs vector element by element: the optimized path must
 * produce the same requests, in the same order, with the same bits.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "services/tailbench.hh"
#include "sim/machine.hh"
#include "sim/queue_sim.hh"

using namespace twig::sim;
using twig::common::Rng;

namespace {

ServiceProfile
testProfile(double base_ms = 5.0, double cv = 0.5)
{
    ServiceProfile p;
    p.name = "diff";
    p.maxLoadRps = 2000.0;
    p.qosTargetMs = 20.0;
    p.baseServiceTimeMs = base_ms;
    p.serviceTimeCv = cv;
    p.freqExponent = 1.0;
    p.timeoutMs = 400.0;
    return p;
}

CoreAssignment
dedicated(std::size_t n, double ghz = 2.0)
{
    CoreAssignment a;
    for (std::size_t i = 0; i < n; ++i)
        a.dedicatedCores.push_back(i);
    a.freqGhz = ghz;
    a.sharedFreqGhz = ghz;
    return a;
}

CoreAssignment
mixed(std::size_t n_ded, std::size_t n_shared, std::size_t share_count,
      double usable, double ghz = 2.0, double shared_ghz = 1.6)
{
    CoreAssignment a;
    for (std::size_t i = 0; i < n_ded; ++i)
        a.dedicatedCores.push_back(i);
    for (std::size_t i = 0; i < n_shared; ++i)
        a.sharedCores.push_back(n_ded + i);
    a.shareCount = share_count;
    a.sharedUsableCores = usable;
    a.freqGhz = ghz;
    a.sharedFreqGhz = shared_ghz;
    return a;
}

/** One interval of a differential schedule. */
struct Interval
{
    double rps;
    CoreAssignment assignment;
    double inflation = 1.0;
};

/** Step both paths through @p schedule and require exact equality of
 * every result field, latencies element-wise included. */
void
runDiff(const ServiceProfile &profile,
        const std::vector<Interval> &schedule, std::uint64_t seed,
        std::size_t max_pending = 200000)
{
    RequestQueueSim optimized(profile, Rng(seed), 2.0, max_pending);
    RequestQueueSim reference(profile, Rng(seed), 2.0, max_pending);
    reference.setReferencePath(true);

    double t0 = 0.0;
    for (std::size_t i = 0; i < schedule.size(); ++i, t0 += 1.0) {
        const Interval &iv = schedule[i];
        const auto &ro =
            optimized.run(t0, 1.0, iv.rps, iv.assignment, iv.inflation);
        const auto &rr =
            reference.run(t0, 1.0, iv.rps, iv.assignment, iv.inflation);

        EXPECT_EQ(ro.completed, rr.completed) << "interval " << i;
        EXPECT_EQ(ro.arrivals, rr.arrivals) << "interval " << i;
        EXPECT_EQ(ro.dropped, rr.dropped) << "interval " << i;
        EXPECT_EQ(ro.queuedAtEnd, rr.queuedAtEnd) << "interval " << i;
        EXPECT_EQ(ro.p99Ms, rr.p99Ms) << "interval " << i;
        EXPECT_EQ(ro.p99InstantMs, rr.p99InstantMs) << "interval " << i;
        EXPECT_EQ(ro.meanMs, rr.meanMs) << "interval " << i;
        EXPECT_EQ(ro.busyCoreSeconds, rr.busyCoreSeconds)
            << "interval " << i;
        EXPECT_EQ(ro.meanServiceTimeMs, rr.meanServiceTimeMs)
            << "interval " << i;
        ASSERT_EQ(ro.latenciesMs.size(), rr.latenciesMs.size())
            << "interval " << i;
        for (std::size_t j = 0; j < ro.latenciesMs.size(); ++j) {
            ASSERT_EQ(ro.latenciesMs[j], rr.latenciesMs[j])
                << "interval " << i << " request " << j;
        }
        ASSERT_EQ(optimized.backlog(), reference.backlog())
            << "interval " << i;
        if (::testing::Test::HasFailure())
            FAIL() << "first divergence at interval " << i;
    }
}

} // namespace

TEST(DispatchDiff, BurstsIntoEmptyIntervals)
{
    // A 3x burst, then empty intervals that drain the backlog with no
    // new arrivals: dispatch must walk the ring without fresh input,
    // and arrivals-free intervals must leave the RNG stream aligned.
    std::vector<Interval> schedule;
    for (int cycle = 0; cycle < 12; ++cycle) {
        schedule.push_back({3.0 * 8 * 200.0, dedicated(8)});
        schedule.push_back({0.0, dedicated(8)});
        schedule.push_back({0.0, dedicated(8)});
        schedule.push_back({0.0, dedicated(8)});
    }
    runDiff(testProfile(), schedule, 7);
}

TEST(DispatchDiff, SingleCoreClassOverload)
{
    // One core, offered load past capacity: every request waits on
    // the same free-time value, timeouts fire, the queue grows.
    std::vector<Interval> schedule(40, {1.4 * 200.0, dedicated(1)});
    runDiff(testProfile(), schedule, 11);
}

TEST(DispatchDiff, AllCoresBusySaturation)
{
    // 18 cores at 130% load for a sustained stretch: the calendar's
    // last bucket degenerates as completions pile past the interval
    // end, then a light stretch drains the backlog.
    std::vector<Interval> schedule;
    for (int i = 0; i < 25; ++i)
        schedule.push_back({1.3 * 18 * 200.0, dedicated(18)});
    for (int i = 0; i < 15; ++i)
        schedule.push_back({0.3 * 18 * 200.0, dedicated(18)});
    runDiff(testProfile(), schedule, 13);
}

TEST(DispatchDiff, ZeroCoreIntervalsSpillEverything)
{
    // Intervals granting no cores at all (service swapped out):
    // arrivals must spill to the backlog untouched on both paths,
    // then get serviced when cores return.
    std::vector<Interval> schedule;
    for (int cycle = 0; cycle < 10; ++cycle) {
        schedule.push_back({0.8 * 4 * 200.0, dedicated(4)});
        schedule.push_back({0.5 * 4 * 200.0, CoreAssignment{}});
        schedule.push_back({0.8 * 4 * 200.0, dedicated(4)});
    }
    runDiff(testProfile(), schedule, 17);
}

TEST(DispatchDiff, TinyBacklogCapDrops)
{
    // max_pending of 64: overload rams the ring's capacity cap, so
    // accept/drop accounting and the overflow path must agree.
    std::vector<Interval> schedule(30, {2.0 * 2 * 200.0, dedicated(2)});
    runDiff(testProfile(), schedule, 19, /*max_pending=*/64);
}

TEST(DispatchDiff, SharedAndFractionalClasses)
{
    // All three speed classes at once (dedicated, shared-full,
    // shared-fractional) with differing frequencies, so dispatch
    // selects among calendars with distinct service rates.
    std::vector<Interval> schedule;
    for (int i = 0; i < 30; ++i) {
        schedule.push_back(
            {0.9 * 6 * 200.0, mixed(3, 4, 2, 2.5, 2.0, 1.4)});
        schedule.push_back(
            {0.4 * 6 * 200.0, mixed(2, 6, 3, 4.0, 1.8, 1.8)});
    }
    runDiff(testProfile(6.75, 0.7), schedule, 23);
}

TEST(DispatchDiff, FuzzedSchedules)
{
    // Fuzz: random load multipliers (including zero and deep
    // overload), random assignments (single-core, zero-core, mixed
    // shared/fractional, full socket), random DVFS and inflation.
    // Seeds are fixed so failures replay deterministically.
    Rng fuzz(0xd15f);
    const double mults[] = {0.0, 0.0, 0.1, 0.5, 0.9, 1.2, 2.5};
    for (int round = 0; round < 8; ++round) {
        std::vector<Interval> schedule;
        const std::size_t len = 20 + fuzz.uniformInt(std::uint64_t{30});
        for (std::size_t i = 0; i < len; ++i) {
            Interval iv;
            const double ghz = 1.2 + 0.1 * static_cast<double>(
                fuzz.uniformInt(std::uint64_t{9}));
            switch (fuzz.uniformInt(std::uint64_t{5})) {
            case 0:
                iv.assignment = dedicated(1, ghz);
                break;
            case 1:
                iv.assignment = CoreAssignment{};
                break;
            case 2:
                iv.assignment = dedicated(
                    1 + fuzz.uniformInt(std::uint64_t{18}), ghz);
                break;
            case 3:
                iv.assignment = mixed(
                    fuzz.uniformInt(std::uint64_t{4}),
                    1 + fuzz.uniformInt(std::uint64_t{8}),
                    2 + fuzz.uniformInt(std::uint64_t{3}),
                    fuzz.uniform(0.5, 6.0), ghz, ghz);
                break;
            default:
                iv.assignment = mixed(
                    1 + fuzz.uniformInt(std::uint64_t{8}), 2, 2, -1.0,
                    ghz, 2.0);
                break;
            }
            const std::size_t cores =
                iv.assignment.dedicatedCores.size() +
                iv.assignment.sharedCores.size();
            iv.rps = mults[fuzz.uniformInt(std::uint64_t{7})] *
                static_cast<double>(cores == 0 ? 4 : cores) * 200.0;
            iv.inflation = fuzz.uniform(1.0, 2.0);
            schedule.push_back(std::move(iv));
        }
        runDiff(testProfile(5.0, 0.3 + 0.2 * round), schedule,
                1000 + static_cast<std::uint64_t>(round));
        if (::testing::Test::HasFailure())
            FAIL() << "fuzz round " << round << " diverged";
    }
}
