/**
 * @file
 * Steady-state allocation tests: after a warm-up step has sized every
 * scratch buffer, `BdqLearner::trainStep()` and `Mlp::trainStep()` must
 * perform zero heap allocations. Enforced by replacing the global
 * operator new/delete with malloc/free wrappers that bump an atomic
 * counter while a test has counting enabled.
 *
 * This lives in its own test binary so the replaced allocator cannot
 * perturb the rest of the suite.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "baselines/static_manager.hh"
#include "cluster/cluster_manager.hh"
#include "common/rng.hh"
#include "core/mapper.hh"
#include "nn/mlp.hh"
#include "rl/bdq_learner.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

namespace {

std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void *
countedAlloc(std::size_t n)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n == 0 ? 1 : n);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
countedAllocAligned(std::size_t n, std::align_val_t al)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(al);
    void *p = std::aligned_alloc(a, (n + a - 1) / a * a);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, std::align_val_t al)
{
    return countedAllocAligned(n, al);
}
void *
operator new[](std::size_t n, std::align_val_t al)
{
    return countedAllocAligned(n, al);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace twig;
using twig::common::Rng;

namespace {

long long
countAllocations(const std::function<void()> &body)
{
    g_alloc_count.store(0);
    g_counting.store(true);
    body();
    g_counting.store(false);
    return g_alloc_count.load();
}

rl::BdqLearnerConfig
smallLearner()
{
    rl::BdqLearnerConfig cfg;
    cfg.net.numAgents = 2;
    cfg.net.stateDimPerAgent = 3;
    cfg.net.trunkHidden = {24, 16};
    cfg.net.agentHeadHidden = 12;
    cfg.net.branchHidden = 12;
    cfg.net.branchActions = {4, 3};
    cfg.net.dropoutRate = 0.0f;
    cfg.minibatch = 16;
    cfg.replay.capacity = 2048;
    cfg.minReplayBeforeTraining = 16;
    cfg.targetUpdateInterval = 50;
    return cfg;
}

rl::Transition
randomTransition(Rng &rng)
{
    rl::Transition t;
    for (int i = 0; i < 6; ++i)
        t.state.push_back(static_cast<float>(rng.uniform()));
    t.actions = {{rng.uniformInt(4), rng.uniformInt(3)},
                 {rng.uniformInt(4), rng.uniformInt(3)}};
    t.rewards = {rng.uniform(), rng.uniform()};
    t.nextState = t.state;
    return t;
}

} // namespace

TEST(Alloc, CounterSeesHeapAllocations)
{
    const long long n = countAllocations([] {
        std::vector<int> v(4096);
        v[0] = 1;
    });
    EXPECT_GE(n, 1);
}

TEST(Alloc, BdqTrainStepSteadyStateIsAllocationFree)
{
    Rng rng(7);
    rl::BdqLearner learner(smallLearner(), rng);
    Rng env(11);
    for (int i = 0; i < 64; ++i)
        learner.observe(randomTransition(env));
    // Warm up: the first gradient steps size every scratch buffer.
    for (int i = 0; i < 3; ++i)
        learner.trainStep();

    const long long n = countAllocations([&] {
        for (int i = 0; i < 5; ++i)
            learner.trainStep();
    });
    EXPECT_EQ(n, 0) << "steady-state BdqLearner::trainStep allocated";
}

TEST(Alloc, MlpTrainStepSteadyStateIsAllocationFree)
{
    nn::MlpConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {16, 8};
    cfg.outputDim = 2;
    Rng rng(3);
    nn::Mlp mlp(cfg, rng);

    nn::Matrix x(16, 4), t(16, 2);
    Rng data(5);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(data.uniform());
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(data.uniform());

    for (int i = 0; i < 3; ++i)
        mlp.trainStep(x, t);

    const long long n = countAllocations([&] {
        for (int i = 0; i < 5; ++i)
            mlp.trainStep(x, t);
    });
    EXPECT_EQ(n, 0) << "steady-state Mlp::trainStep allocated";
}

TEST(Alloc, MlpPredictSteadyStateIsAllocationFree)
{
    nn::MlpConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {16, 8};
    cfg.outputDim = 2;
    Rng rng(3);
    nn::Mlp mlp(cfg, rng);

    nn::Matrix x(8, 4), y;
    Rng data(5);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(data.uniform());
    mlp.predict(x, y); // warm-up sizes y and the activation scratch

    const long long n = countAllocations([&] {
        for (int i = 0; i < 5; ++i)
            mlp.predict(x, y);
    });
    EXPECT_EQ(n, 0) << "steady-state Mlp::predict allocated";
}

TEST(Alloc, ServerRunIntervalSteadyStateIsAllocationFree)
{
    // Two colocated services so the shared pool, interference model and
    // per-service latency paths are all exercised.
    sim::MachineConfig machine;
    sim::Server server(machine, 21);
    const auto masstree = twig::services::masstree();
    const auto xapian = twig::services::xapian();
    server.addService(masstree, std::make_unique<sim::FixedLoad>(
                                    masstree.maxLoadRps, 0.5));
    server.addService(xapian, std::make_unique<sim::FixedLoad>(
                                  xapian.maxLoadRps, 0.5));

    core::Mapper mapper(machine);
    std::vector<core::ResourceRequest> requests = {
        {machine.numCores / 2, machine.dvfs.numStates() - 1},
        {machine.numCores / 2, machine.dvfs.numStates() - 1}};
    std::vector<sim::CoreAssignment> assignments;
    mapper.mapInto(requests, assignments);

    // Warm up: sizes the arrival scratch, latency vectors, QoS window
    // and power/interference buffers to their steady-state high-water
    // marks (Poisson arrivals are deterministic for a fixed seed, so
    // the counted intervals below never exceed them).
    for (int i = 0; i < 50; ++i)
        server.runInterval(assignments);

    const long long n = countAllocations([&] {
        for (int i = 0; i < 5; ++i)
            server.runInterval(assignments);
    });
    EXPECT_EQ(n, 0) << "steady-state Server::runInterval allocated";
}

TEST(Alloc, ClusterManagerStepSteadyStateIsAllocationFree)
{
    const auto masstree = twig::services::masstree();
    cluster::ClusterConfig cfg;
    cfg.router.policy = cluster::RoutingPolicy::Static;
    cfg.jobs = 1;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps * 2.0, 0.5));
    cluster::ClusterManager fleet(cfg, {masstree}, std::move(loads), 42);

    const auto factory = [](const sim::MachineConfig &machine,
                            const std::vector<sim::ServiceProfile> &,
                            std::uint64_t)
        -> std::unique_ptr<core::TaskManager> {
        return std::make_unique<baselines::StaticManager>(machine);
    };
    fleet.addNode(sim::MachineConfig{}, factory);
    fleet.addNode(sim::MachineConfig{}, factory);

    // Warm up past the trailing QoS window so the per-service
    // histogram ring and every merge scratch reaches steady state.
    for (int i = 0; i < 50; ++i)
        fleet.step();

    const long long n = countAllocations([&] {
        for (int i = 0; i < 5; ++i)
            fleet.step();
    });
    EXPECT_EQ(n, 0) << "steady-state ClusterManager::step allocated";
}
