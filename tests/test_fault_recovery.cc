/** @file Fleet failover and agent recovery under injected faults:
 * router health, crash/restart with warm and cold recovery, corrupt
 * checkpoint fallback, load shedding, and bit-exact replay. */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/static_manager.hh"
#include "cluster/cluster_manager.hh"
#include "cluster/router.hh"
#include "common/error.hh"
#include "core/twig_manager.hh"
#include "faults/fault_injector.hh"
#include "faults/fault_spec.hh"
#include "harness/engine.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"

using namespace twig;
using namespace twig::cluster;
using twig::common::FatalError;

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

ClusterManager::ManagerFactory
staticNodes()
{
    return [](const sim::MachineConfig &machine,
              const std::vector<sim::ServiceProfile> &,
              std::uint64_t) -> std::unique_ptr<core::TaskManager> {
        return std::make_unique<baselines::StaticManager>(machine);
    };
}

/** Twig nodes with a canned power model (the RL loop and its RNG run
 * for real; only the Eq. 2 fit is skipped for speed). */
ClusterManager::ManagerFactory
twigNodes(std::size_t horizon)
{
    return [horizon](const sim::MachineConfig &machine,
                     const std::vector<sim::ServiceProfile> &svcs,
                     std::uint64_t seed)
        -> std::unique_ptr<core::TaskManager> {
        const auto maxima = services::calibrateCounterMaxima(machine);
        std::vector<core::TwigServiceSpec> specs;
        for (const auto &p : svcs) {
            core::TwigServiceSpec spec;
            spec.name = p.name;
            spec.qosTargetMs = p.qosTargetMs;
            spec.maxLoadRps = p.maxLoadRps;
            spec.powerModel = core::ServicePowerModel(10.0, 1.0, 2.0);
            specs.push_back(spec);
        }
        return std::make_unique<core::TwigManager>(
            core::TwigConfig::fast(horizon), machine, maxima,
            std::move(specs), seed);
    };
}

/** Homogeneous fixed-load Masstree fleet. */
ClusterManager
makeFleet(RoutingPolicy policy, std::size_t jobs, std::size_t nodes,
          const ClusterManager::ManagerFactory &factory)
{
    const auto masstree = services::masstree();
    ClusterConfig cfg;
    cfg.router.policy = policy;
    cfg.jobs = jobs;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(std::make_unique<sim::FixedLoad>(
        masstree.maxLoadRps * static_cast<double>(nodes), 0.4));
    ClusterManager fleet(cfg, {masstree}, std::move(loads), 42);
    for (std::size_t n = 0; n < nodes; ++n)
        fleet.addNode(sim::MachineConfig{}, factory);
    return fleet;
}

faults::FaultAction
crashAction(std::size_t at, std::size_t node, std::size_t restart_after,
            const std::string &recovery)
{
    faults::FaultAction a;
    a.kind = faults::FaultKind::NodeCrash;
    a.atStep = at;
    a.node = node;
    a.restartAfterSteps = restart_after;
    a.recovery = recovery;
    return a;
}

std::size_t
countEvents(const std::vector<faults::FaultEvent> &log,
            faults::FaultEventKind kind)
{
    std::size_t n = 0;
    for (const auto &ev : log)
        n += ev.kind == kind ? 1 : 0;
    return n;
}

const faults::FaultEvent *
findEvent(const std::vector<faults::FaultEvent> &log,
          faults::FaultEventKind kind)
{
    for (const auto &ev : log)
        if (ev.kind == kind)
            return &ev;
    return nullptr;
}

/** Bit-identical, not approximately equal — the jobs count and the
 * run instance must not leak into any simulated quantity. */
void
expectIdenticalTraces(const FleetRunResult &a, const FleetRunResult &b)
{
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t t = 0; t < a.trace.size(); ++t) {
        const auto &fa = a.trace[t];
        const auto &fb = b.trace[t];
        EXPECT_EQ(fa.offeredRps, fb.offeredRps) << "step " << t;
        EXPECT_EQ(fa.fleetP99Ms, fb.fleetP99Ms) << "step " << t;
        EXPECT_EQ(fa.totalPowerW, fb.totalPowerW) << "step " << t;
        EXPECT_EQ(fa.nodeUp, fb.nodeUp) << "step " << t;
        EXPECT_EQ(fa.shedRps, fb.shedRps) << "step " << t;
        EXPECT_EQ(fa.faultEvents, fb.faultEvents) << "step " << t;
    }
    EXPECT_EQ(a.metrics.windowP99Ms, b.metrics.windowP99Ms);
    EXPECT_EQ(a.metrics.meanPowerW, b.metrics.meanPowerW);
}

} // namespace

// --- Router health ----------------------------------------------------

TEST(RouterHealth, EvictRenormalizesOntoSurvivors)
{
    Router wrr({RoutingPolicy::WeightedRoundRobin, 300}, 1);
    wrr.evict(1);
    const auto out = wrr.route({600.0}, {2.0, 1.0, 1.0}, {});
    EXPECT_DOUBLE_EQ(out[1][0], 0.0);
    EXPECT_NEAR(out[0][0] + out[2][0], 600.0, 1e-9);
    // 2:1 among the survivors.
    EXPECT_NEAR(out[0][0], 400.0, 1e-9);

    Router stat({RoutingPolicy::Static, 64}, 1);
    stat.evict(0);
    const auto eq = stat.route({600.0}, {1.0, 1.0, 1.0}, {});
    EXPECT_DOUBLE_EQ(eq[0][0], 0.0);
    EXPECT_DOUBLE_EQ(eq[1][0], 300.0);
    EXPECT_DOUBLE_EQ(eq[2][0], 300.0);
}

TEST(RouterHealth, SingleSurvivorTakesTheWholeLoad)
{
    // Regression: p2c with exactly one node in rotation must not draw
    // a second choice from an empty candidate set.
    Router router({RoutingPolicy::PowerOfTwoLatency, 256}, 7);
    router.evict(0);
    router.evict(2);
    const auto out = router.route({900.0}, {1.0, 1.0, 1.0}, {});
    EXPECT_DOUBLE_EQ(out[0][0], 0.0);
    EXPECT_DOUBLE_EQ(out[1][0], 900.0);
    EXPECT_DOUBLE_EQ(out[2][0], 0.0);
}

TEST(RouterHealth, AllNodesDownShedsInsteadOfNaN)
{
    for (const RoutingPolicy policy :
         {RoutingPolicy::Static, RoutingPolicy::WeightedRoundRobin,
          RoutingPolicy::PowerOfTwoLatency}) {
        Router router({policy, 64}, 1);
        router.evict(0);
        router.evict(1);
        std::vector<std::vector<double>> out;
        EXPECT_FALSE(router.routeInto({500.0}, {1.0, 1.0}, {}, out));
        for (const auto &node : out)
            for (const double rps : node) {
                EXPECT_FALSE(std::isnan(rps));
                EXPECT_DOUBLE_EQ(rps, 0.0);
            }

        router.readmit(1);
        EXPECT_TRUE(router.routeInto({500.0}, {1.0, 1.0}, {}, out));
        EXPECT_DOUBLE_EQ(out[1][0], 500.0);
    }
}

TEST(RouterHealth, EvictAndReadmitAreIdempotent)
{
    Router router({RoutingPolicy::Static, 64}, 1);
    router.evict(1);
    router.evict(1);
    EXPECT_FALSE(router.isUp(1));
    EXPECT_TRUE(router.isUp(0));
    router.readmit(1);
    router.readmit(1);
    EXPECT_TRUE(router.isUp(1));
    // Nodes the router has never seen are up by definition.
    EXPECT_TRUE(router.isUp(17));
}

// --- Fleet failover ---------------------------------------------------

TEST(FleetFailover, CrashRemovesTheNodeUntilRestart)
{
    auto fleet =
        makeFleet(RoutingPolicy::Static, 1, 3, staticNodes());
    faults::FaultSpec spec;
    spec.actions.push_back(crashAction(5, 1, 5, "cold"));
    fleet.setFaults(spec);
    const auto result = fleet.run(15, 5);

    for (std::size_t t = 0; t < 15; ++t) {
        const bool down = t >= 5 && t < 10;
        EXPECT_EQ(result.trace[t].nodeUp[1], down ? 0 : 1)
            << "step " << t;
        EXPECT_EQ(result.trace[t].nodeUp[0], 1) << "step " << t;
        // A two-survivor interval carries two nodes' power only.
        if (down) {
            EXPECT_DOUBLE_EQ(result.trace[t].totalPowerW,
                             result.trace[t].nodes[0].socketPowerW +
                                 result.trace[t].nodes[2].socketPowerW)
                << "step " << t;
        }
    }
    EXPECT_EQ(countEvents(fleet.faultLog(),
                          faults::FaultEventKind::NodeCrash),
              1u);
    EXPECT_EQ(countEvents(fleet.faultLog(),
                          faults::FaultEventKind::NodeRestart),
              1u);
    EXPECT_EQ(countEvents(fleet.faultLog(),
                          faults::FaultEventKind::ColdRestart),
              1u);
}

TEST(FleetFailover, WarmRecoveryRestoresTheLatestFrame)
{
    auto fleet =
        makeFleet(RoutingPolicy::Static, 1, 2, twigNodes(16));
    faults::FaultSpec spec;
    spec.checkpointEverySteps = 4;
    spec.actions.push_back(crashAction(9, 1, 3, "warm"));
    fleet.setFaults(spec);
    fleet.run(16, 4);

    const auto &log = fleet.faultLog();
    EXPECT_GT(countEvents(log, faults::FaultEventKind::CheckpointSaved),
              0u);
    ASSERT_EQ(countEvents(log, faults::FaultEventKind::WarmRestore), 1u);
    EXPECT_EQ(countEvents(log, faults::FaultEventKind::ColdRestart), 0u);
    const auto *restore =
        findEvent(log, faults::FaultEventKind::WarmRestore);
    EXPECT_EQ(restore->node, 1);
    EXPECT_GT(restore->value, 0.0); // restored payload bytes
    EXPECT_EQ(restore->step, 12u);
}

TEST(FleetFailover, WarmWithoutAFrameFallsBackToCold)
{
    auto fleet =
        makeFleet(RoutingPolicy::Static, 1, 2, twigNodes(12));
    faults::FaultSpec spec; // no periodic checkpoints
    spec.actions.push_back(crashAction(3, 0, 3, "warm"));
    fleet.setFaults(spec);
    fleet.run(12, 4);

    const auto &log = fleet.faultLog();
    EXPECT_EQ(countEvents(log, faults::FaultEventKind::WarmRestore), 0u);
    ASSERT_EQ(countEvents(log, faults::FaultEventKind::ColdRestart), 1u);
    const auto *cold =
        findEvent(log, faults::FaultEventKind::ColdRestart);
    EXPECT_NE(cold->note.find("no checkpoint frame"),
              std::string::npos)
        << cold->note;
}

TEST(FleetFailover, CorruptFrameIsDetectedAndDegradesToCold)
{
    auto fleet =
        makeFleet(RoutingPolicy::Static, 1, 2, twigNodes(16));
    faults::FaultSpec spec;
    spec.checkpointEverySteps = 4;
    faults::FaultAction corrupt;
    corrupt.kind = faults::FaultKind::CheckpointCorrupt;
    corrupt.atStep = 10;
    corrupt.node = 1;
    spec.actions.push_back(corrupt);
    spec.actions.push_back(crashAction(11, 1, 3, "warm"));
    fleet.setFaults(spec);
    // The damaged frame must be rejected, not loaded and not fatal.
    const auto result = fleet.run(16, 4);
    EXPECT_EQ(result.trace.size(), 16u);

    const auto &log = fleet.faultLog();
    EXPECT_EQ(countEvents(log, faults::FaultEventKind::WarmRestore), 0u);
    EXPECT_EQ(countEvents(log, faults::FaultEventKind::CorruptDetected),
              1u);
    EXPECT_EQ(countEvents(log, faults::FaultEventKind::ColdRestart), 1u);
    EXPECT_EQ(result.trace[15].nodeUp[1], 1); // back in service
}

TEST(FleetFailover, AllNodesDownBecomesAWellDefinedShedRecord)
{
    auto fleet =
        makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 2, staticNodes());
    faults::FaultSpec spec;
    spec.actions.push_back(crashAction(3, 0, 0, "cold"));
    spec.actions.push_back(crashAction(4, 1, 0, "cold"));
    fleet.setFaults(spec);
    const auto result = fleet.run(8, 3);

    for (std::size_t t = 4; t < 8; ++t) {
        const auto &fs = result.trace[t];
        EXPECT_GT(fs.shedRps, 0.0) << "step " << t;
        EXPECT_DOUBLE_EQ(fs.shedRps, fs.offeredRps[0]) << "step " << t;
        EXPECT_DOUBLE_EQ(fs.totalPowerW, 0.0) << "step " << t;
        for (const double p99 : fs.fleetP99Ms)
            EXPECT_FALSE(std::isnan(p99)) << "step " << t;
    }
    EXPECT_EQ(countEvents(fleet.faultLog(),
                          faults::FaultEventKind::LoadShed),
              4u);
}

TEST(FleetFailover, ThrottleReducesPowerWhileActive)
{
    auto baseline =
        makeFleet(RoutingPolicy::Static, 1, 2, staticNodes());
    const auto clean = baseline.run(12, 4);

    auto throttled =
        makeFleet(RoutingPolicy::Static, 1, 2, staticNodes());
    faults::FaultSpec spec;
    faults::FaultAction throttle;
    throttle.kind = faults::FaultKind::ThermalThrottle;
    throttle.atStep = 4;
    throttle.node = 0;
    throttle.durationSteps = 6;
    throttle.maxDvfsIndex = 0;
    spec.actions.push_back(throttle);
    throttled.setFaults(spec);
    const auto hot = throttled.run(12, 4);

    // Same world up to the throttle...
    for (std::size_t t = 0; t < 4; ++t)
        EXPECT_EQ(hot.trace[t].nodes[0].socketPowerW,
                  clean.trace[t].nodes[0].socketPowerW)
            << "step " << t;
    // ...then the capped node burns strictly less than its
    // all-cores-max baseline while the cap holds.
    for (std::size_t t = 4; t < 10; ++t)
        EXPECT_LT(hot.trace[t].nodes[0].socketPowerW,
                  clean.trace[t].nodes[0].socketPowerW)
            << "step " << t;
}

TEST(FleetFailover, TelemetryFaultLeavesGroundTruthExact)
{
    // A stats-blind manager decides identically under PMC noise, so
    // the whole simulated world must replay bit-identically: the
    // fault perturbs only the manager-visible copy of the telemetry.
    auto baseline =
        makeFleet(RoutingPolicy::Static, 1, 2, staticNodes());
    const auto clean = baseline.run(12, 4);

    auto noisy = makeFleet(RoutingPolicy::Static, 1, 2, staticNodes());
    faults::FaultSpec spec;
    faults::FaultAction noise;
    noise.kind = faults::FaultKind::PmcNoise;
    noise.atStep = 2;
    noise.node = 0;
    noise.durationSteps = 8;
    noise.sigma = 0.5;
    noise.staleProb = 0.3;
    spec.actions.push_back(noise);
    noisy.setFaults(spec);
    const auto faulted = noisy.run(12, 4);

    for (std::size_t t = 0; t < 12; ++t) {
        EXPECT_EQ(faulted.trace[t].fleetP99Ms, clean.trace[t].fleetP99Ms)
            << "step " << t;
        EXPECT_EQ(faulted.trace[t].totalPowerW,
                  clean.trace[t].totalPowerW)
            << "step " << t;
    }
}

TEST(FleetFailover, SurgeMultipliesTheOfferedLoad)
{
    auto baseline =
        makeFleet(RoutingPolicy::Static, 1, 2, staticNodes());
    const auto clean = baseline.run(10, 4);

    auto surged = makeFleet(RoutingPolicy::Static, 1, 2, staticNodes());
    faults::FaultSpec spec;
    faults::FaultAction surge;
    surge.kind = faults::FaultKind::LoadSurge;
    surge.atStep = 4;
    surge.service = 0;
    surge.durationSteps = 3;
    surge.multiplier = 2.0;
    spec.actions.push_back(surge);
    surged.setFaults(spec);
    const auto hot = surged.run(10, 4);

    for (std::size_t t = 0; t < 10; ++t) {
        const double expected = (t >= 4 && t < 7 ? 2.0 : 1.0) *
            clean.trace[t].offeredRps[0];
        EXPECT_DOUBLE_EQ(hot.trace[t].offeredRps[0], expected)
            << "step " << t;
    }
}

TEST(FleetFailover, SetFaultsValidatesAgainstTheFleetShape)
{
    auto fleet =
        makeFleet(RoutingPolicy::Static, 1, 2, staticNodes());
    faults::FaultSpec bad;
    bad.actions.push_back(crashAction(3, 5, 0, "cold")); // node 5 of 2
    EXPECT_THROW(fleet.setFaults(bad), FatalError);

    const auto masstree = services::masstree();
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    ClusterManager empty({}, {masstree}, std::move(loads), 1);
    faults::FaultSpec ok;
    ok.checkpointEverySteps = 4;
    EXPECT_THROW(empty.setFaults(ok), FatalError); // no nodes yet
}

// --- Deterministic replay ---------------------------------------------

TEST(FaultReplay, SameSeedSameScheduleIsBitIdentical)
{
    faults::FaultSpec spec;
    spec.checkpointEverySteps = 4;
    spec.actions.push_back(crashAction(7, 1, 4, "warm"));
    faults::FaultAction noise;
    noise.kind = faults::FaultKind::PmcNoise;
    noise.atStep = 3;
    noise.node = 0;
    noise.durationSteps = 6;
    noise.sigma = 0.3;
    spec.actions.push_back(noise);
    faults::FaultAction surge;
    surge.kind = faults::FaultKind::LoadSurge;
    surge.atStep = 5;
    surge.service = 0;
    surge.durationSteps = 4;
    surge.multiplier = 1.4;
    spec.actions.push_back(surge);

    auto runOnce = [&](std::size_t jobs) {
        auto fleet = makeFleet(RoutingPolicy::PowerOfTwoLatency, jobs,
                               3, twigNodes(16));
        fleet.setFaults(spec);
        auto result = fleet.run(16, 5);
        return std::make_pair(std::move(result), fleet.faultLog());
    };

    const auto a = runOnce(1);
    const auto b = runOnce(1);
    const auto c = runOnce(3);
    expectIdenticalTraces(a.first, b.first);
    // Node stepping on a thread pool must not reorder or alter one
    // fault event either.
    expectIdenticalTraces(a.first, c.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_EQ(a.second, c.second);
}

TEST(FaultReplay, EngineScenarioStreamsEventsAndReplaysAcrossJobs)
{
    harness::ScenarioSpec spec;
    spec.name = "fault-replay";
    spec.topology = "cluster";
    harness::ServiceLoadSpec load;
    load.service = "masstree";
    load.pattern = "fixed";
    load.fraction = 0.4;
    spec.services.push_back(load);
    spec.manager = "static";
    spec.steps = 12;
    spec.window = 4;
    spec.nodes = 2;
    spec.policy = "p2c-latency";
    spec.faults.actions.push_back(crashAction(3, 1, 4, "cold"));

    const std::string csv = tmpPath("fault_events.csv");
    harness::FaultCsvSink sink(csv);
    harness::EngineOptions serial;
    serial.jobs = 1;
    serial.sinks.push_back(&sink);
    const auto a = harness::Engine(serial).run(spec);
    EXPECT_GT(sink.events(), 0u);

    harness::EngineOptions parallel;
    parallel.jobs = 2;
    const auto b = harness::Engine(parallel).run(spec);
    expectIdenticalTraces(a.fleet, b.fleet);

    std::ifstream in(csv);
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("node_crash"), std::string::npos);
    EXPECT_NE(text.str().find("cold_restart"), std::string::npos);
}
