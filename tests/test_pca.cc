/** @file Unit tests for the Jacobi eigensolver and PCA. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"
#include "stats/pca.hh"

using namespace twig::stats;

TEST(Jacobi, DiagonalMatrixEigenvaluesSorted)
{
    const auto r = jacobiEigenSymmetric({{3.0, 0.0, 0.0},
                                         {0.0, 7.0, 0.0},
                                         {0.0, 0.0, 1.0}});
    ASSERT_EQ(r.eigenvalues.size(), 3u);
    EXPECT_NEAR(r.eigenvalues[0], 7.0, 1e-10);
    EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-10);
    EXPECT_NEAR(r.eigenvalues[2], 1.0, 1e-10);
}

TEST(Jacobi, Known2x2)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors
    // (1,1)/sqrt2 and (1,-1)/sqrt2.
    const auto r = jacobiEigenSymmetric({{2.0, 1.0}, {1.0, 2.0}});
    EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-10);
    EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-10);
    const auto &v = r.eigenvectors[0];
    EXPECT_NEAR(std::abs(v[0]), 1.0 / std::sqrt(2.0), 1e-8);
    EXPECT_NEAR(v[0], v[1], 1e-8); // same sign components
}

TEST(Jacobi, EigenvectorsSatisfyDefinition)
{
    const std::vector<std::vector<double>> m = {
        {4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 1.0}};
    const auto r = jacobiEigenSymmetric(m);
    for (std::size_t c = 0; c < 3; ++c) {
        const auto &v = r.eigenvectors[c];
        for (std::size_t i = 0; i < 3; ++i) {
            double mv = 0.0;
            for (std::size_t j = 0; j < 3; ++j)
                mv += m[i][j] * v[j];
            EXPECT_NEAR(mv, r.eigenvalues[c] * v[i], 1e-8);
        }
    }
}

TEST(Jacobi, TraceEqualsEigenvalueSum)
{
    const auto r = jacobiEigenSymmetric(
        {{5.0, 2.0}, {2.0, -1.0}});
    EXPECT_NEAR(r.eigenvalues[0] + r.eigenvalues[1], 4.0, 1e-10);
}

TEST(Jacobi, NonSquareThrows)
{
    EXPECT_THROW(jacobiEigenSymmetric({{1.0, 2.0}}),
                 twig::common::FatalError);
}

TEST(Pca, ExplainedVarianceSumsToOne)
{
    twig::common::Rng rng(2);
    std::vector<std::vector<double>> cols(4);
    for (int i = 0; i < 300; ++i)
        for (auto &c : cols)
            c.push_back(rng.normal());
    const auto r = pca(cols);
    double total = 0.0;
    for (double f : r.explainedVarianceRatio)
        total += f;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pca, FirstComponentCapturesSharedDirection)
{
    // Two near-identical columns plus tiny noise column: the first
    // component should explain almost everything.
    twig::common::Rng rng(4);
    std::vector<std::vector<double>> cols(3);
    for (int i = 0; i < 500; ++i) {
        const double base = rng.normal(0.0, 10.0);
        cols[0].push_back(base);
        cols[1].push_back(base + 0.01 * rng.normal());
        cols[2].push_back(0.01 * rng.normal());
    }
    const auto r = pca(cols);
    EXPECT_GT(r.explainedVarianceRatio[0], 0.99);
    EXPECT_EQ(r.componentsFor(0.95), 1u);
    // Loadings of the two correlated columns dominate component 0.
    const auto &v0 = r.eigenvectors[0];
    EXPECT_GT(std::abs(v0[0]), 10.0 * std::abs(v0[2]));
}

TEST(Pca, ComponentsForThresholds)
{
    // Independent equal-variance columns: each component explains ~1/3.
    twig::common::Rng rng(8);
    std::vector<std::vector<double>> cols(3);
    for (int i = 0; i < 3000; ++i)
        for (auto &c : cols)
            c.push_back(rng.normal());
    const auto r = pca(cols);
    EXPECT_EQ(r.componentsFor(0.30), 1u);
    EXPECT_EQ(r.componentsFor(0.99), 3u);
    EXPECT_EQ(r.componentsFor(2.0), 3u); // unreachable -> all
}

TEST(Pca, FeatureImportanceSizeAndPositivity)
{
    twig::common::Rng rng(16);
    std::vector<std::vector<double>> cols(5);
    for (int i = 0; i < 100; ++i)
        for (auto &c : cols)
            c.push_back(rng.uniform());
    const auto r = pca(cols);
    const auto imp = r.featureImportance(2);
    ASSERT_EQ(imp.size(), 5u);
    for (double v : imp)
        EXPECT_GE(v, 0.0);
}

TEST(Pca, RaggedColumnsThrow)
{
    EXPECT_THROW(pca({{1.0, 2.0}, {1.0}}), twig::common::FatalError);
}

TEST(Pca, TooFewSamplesThrow)
{
    EXPECT_THROW(pca({{1.0}, {2.0}}), twig::common::FatalError);
    EXPECT_THROW(pca({}), twig::common::FatalError);
}
