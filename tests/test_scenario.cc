/** @file
 * Tests for the declarative scenario layer: ScenarioSpec JSON
 * round-trips, registry/spec validation errors, and fixed-seed golden
 * runs proving the engine reproduces hand-built harness runs on both
 * topologies (the refactored benches rely on this equivalence).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/static_manager.hh"
#include "cluster/cluster_manager.hh"
#include "common/error.hh"
#include "harness/engine.hh"
#include "harness/managers.hh"
#include "harness/runner.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;
using namespace twig::harness;

namespace {

ScenarioSpec
richSpec()
{
    ScenarioSpec spec;
    spec.name = "round-trip";
    spec.description = "every optional field set";
    spec.services.push_back([] {
        ServiceLoadSpec s;
        s.service = "masstree";
        s.pattern = "diurnal";
        s.fraction = 0.8;
        s.maxScale = 0.6;
        s.lowFraction = 0.2;
        s.periodSteps = 50;
        return s;
    }());
    spec.services.push_back([] {
        ServiceLoadSpec s;
        s.service = "moses";
        s.pattern = "step";
        s.fraction = 1.0;
        s.changeFactor = 0.3;
        s.maxRps = 1234.5;
        return s;
    }());
    spec.manager = "twig";
    spec.knobs.theta = 0.25;
    spec.knobs.eta = 9;
    spec.knobs.alpha = 0.6;
    spec.paper = true;
    spec.managerSeed = 4082637488651899829ULL; // > 2^53: exactness
    spec.steps = 2000;
    spec.window = 300;
    spec.horizon = 1500;
    spec.seed = 7297471543603743092ULL;
    ScenarioEvent event;
    event.afterSteps = 700;
    event.transfers.push_back([] {
        TransferSpec t;
        t.serviceIndex = 1;
        t.service = "xapian";
        t.specSeed = 47;
        t.reexploreSteps = 100;
        return t;
    }());
    event.services.push_back(spec.services[0]);
    event.services.push_back(spec.services[1]);
    event.serverSeed = 99;
    spec.events.push_back(event);
    return spec;
}

} // namespace

TEST(ScenarioSpec, JsonRoundTripIsByteIdentical)
{
    const ScenarioSpec spec = richSpec();
    const std::string once = spec.toJson().dump(2);
    const ScenarioSpec back =
        ScenarioSpec::fromJson(common::Json::parse(once));
    EXPECT_EQ(back.toJson().dump(2), once);

    // Spot-check fields that have non-trivial encodings.
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.services.size(), 2u);
    EXPECT_EQ(back.services[0].pattern, "diurnal");
    EXPECT_DOUBLE_EQ(back.services[1].maxRps, 1234.5);
    ASSERT_TRUE(back.managerSeed.has_value());
    EXPECT_EQ(*back.managerSeed, 4082637488651899829ULL);
    EXPECT_EQ(back.seed, 7297471543603743092ULL);
    EXPECT_DOUBLE_EQ(*back.knobs.theta, 0.25);
    EXPECT_EQ(*back.knobs.eta, 9u);
    ASSERT_EQ(back.events.size(), 1u);
    EXPECT_EQ(back.events[0].transfers[0].service, "xapian");
    EXPECT_EQ(*back.events[0].serverSeed, 99u);
}

TEST(ScenarioSpec, ClusterFieldsRoundTrip)
{
    ScenarioSpec spec;
    spec.name = "fleet";
    spec.topology = "cluster";
    spec.machineCores = 12;
    ServiceLoadSpec s;
    s.service = "masstree";
    spec.services.push_back(s);
    spec.nodes = 8;
    spec.hetero = true;
    spec.policy = "wrr";
    spec.domains = 4;
    spec.checkpoint = "donor_{cores}c.ckpt";

    const std::string once = spec.toJson().dump();
    const ScenarioSpec back =
        ScenarioSpec::fromJson(common::Json::parse(once));
    EXPECT_EQ(back.toJson().dump(), once);
    EXPECT_EQ(back.machineCores, 12u);
    EXPECT_EQ(back.nodes, 8u);
    EXPECT_TRUE(back.hetero);
    EXPECT_EQ(back.policy, "wrr");
    EXPECT_EQ(back.domains, 4u);
    EXPECT_EQ(back.checkpoint, "donor_{cores}c.ckpt");
}

TEST(ScenarioSpec, AutoscaleAndFleetBlocksRoundTrip)
{
    ScenarioSpec spec;
    spec.name = "elastic";
    spec.topology = "cluster";
    ServiceLoadSpec s;
    s.service = "masstree";
    spec.services.push_back(s);
    spec.nodes = 3;
    autoscale::NodeClass custom;
    custom.id = "fat32";
    custom.cores = 32;
    custom.serviceRateScale = 1.1;
    custom.dollarsPerHour = 1.8;
    spec.nodeClasses.push_back(custom);
    spec.fleetClasses = {"fat32", "gen1", "std18"};
    autoscale::AutoscaleConfig cfg;
    cfg.minNodes = 2;
    cfg.maxNodes = 6;
    cfg.hiUtilization = 0.65;
    cfg.cooldownIntervals = 4;
    spec.autoscale = cfg;

    const std::string once = spec.toJson().dump(2);
    const ScenarioSpec back =
        ScenarioSpec::fromJson(common::Json::parse(once));
    EXPECT_EQ(back.toJson().dump(2), once);
    ASSERT_TRUE(back.autoscale.has_value());
    EXPECT_EQ(back.autoscale->minNodes, 2u);
    EXPECT_EQ(back.autoscale->maxNodes, 6u);
    EXPECT_DOUBLE_EQ(back.autoscale->hiUtilization, 0.65);
    EXPECT_EQ(back.autoscale->cooldownIntervals, 4u);
    ASSERT_EQ(back.nodeClasses.size(), 1u);
    EXPECT_EQ(back.nodeClasses[0].id, "fat32");
    EXPECT_EQ(back.nodeClasses[0].cores, 32u);
    EXPECT_DOUBLE_EQ(back.nodeClasses[0].dollarsPerHour, 1.8);
    EXPECT_EQ(back.fleetClasses,
              (std::vector<std::string>{"fat32", "gen1", "std18"}));
    // With an autoscale block `nodes` is the initial count and the
    // fleet provisions max_nodes slots.
    EXPECT_EQ(back.nodes, 3u);
    EXPECT_EQ(back.totalNodes(), 6u);
}

TEST(ScenarioSpec, ValidateCatchesElasticFleetErrors)
{
    const ManagerRegistry &registry = ManagerRegistry::builtin();
    ScenarioSpec spec;
    spec.topology = "cluster";
    ServiceLoadSpec s;
    s.service = "masstree";
    spec.services.push_back(s);
    spec.nodes = 3;
    autoscale::AutoscaleConfig cfg;
    cfg.minNodes = 2;
    cfg.maxNodes = 6;
    spec.autoscale = cfg;
    EXPECT_EQ(spec.validate(registry), "");

    auto broken = spec;
    broken.autoscale->minNodes = 7;
    EXPECT_EQ(broken.validate(registry),
              "autoscale block with min_nodes > max_nodes");

    broken = spec;
    broken.autoscale->cooldownIntervals = 0;
    EXPECT_EQ(broken.validate(registry),
              "autoscale block with cooldown 0 (would oscillate every "
              "interval)");

    broken = spec;
    broken.nodes = 1; // below min_nodes 2
    EXPECT_EQ(broken.validate(registry),
              "autoscale initial nodes outside [min_nodes, max_nodes]");

    broken = spec;
    broken.fleetClasses = {"gen9"};
    EXPECT_EQ(broken.validate(registry),
              "fleet references undefined node class id 'gen9'");

    broken = spec;
    autoscale::NodeClass shadow;
    shadow.id = "std18";
    broken.nodeClasses.push_back(shadow);
    EXPECT_EQ(broken.validate(registry),
              "node class id 'std18' shadows a built-in class");

    broken = spec;
    autoscale::NodeClass dup;
    dup.id = "fat32";
    broken.nodeClasses.push_back(dup);
    broken.nodeClasses.push_back(dup);
    EXPECT_EQ(broken.validate(registry),
              "duplicate node class id 'fat32'");

    broken = spec;
    broken.autoscale.reset();
    broken.hetero = true;
    broken.fleetClasses = {"std18"};
    EXPECT_EQ(broken.validate(registry),
              "hetero and a fleet class list are mutually exclusive "
              "(the class list already fixes each slot's shape)");

    // Neither block means anything on the single topology.
    broken = spec;
    broken.topology = "single";
    EXPECT_EQ(broken.validate(registry),
              "autoscale is only supported on the cluster topology");

    broken = spec;
    broken.topology = "single";
    broken.autoscale.reset();
    broken.fleetClasses = {"std18"};
    EXPECT_EQ(broken.validate(registry),
              "node classes are only supported on the cluster "
              "topology");
}

TEST(ScenarioSpec, DomainsDefaultToOneAndOmitFromJson)
{
    ScenarioSpec spec;
    spec.name = "fleet";
    spec.topology = "cluster";
    ServiceLoadSpec s;
    s.service = "masstree";
    spec.services.push_back(s);

    // domains == 1 (the flat-equivalent default) is left out of the
    // JSON so pre-sharding scenario files stay byte-stable.
    EXPECT_EQ(spec.domains, 1u);
    EXPECT_EQ(spec.toJson().dump().find("domains"), std::string::npos);
    const ScenarioSpec back = ScenarioSpec::fromJson(
        common::Json::parse(spec.toJson().dump()));
    EXPECT_EQ(back.domains, 1u);
}

#ifdef TWIG_SOURCE_DIR
TEST(ScenarioSpec, ShippedFig05FileCarriesTheSweepCellSeeds)
{
    const auto spec = ScenarioSpec::fromFile(
        std::string(TWIG_SOURCE_DIR) + "/scenarios/fig05.json");
    EXPECT_EQ(spec.name, "fig05");
    EXPECT_EQ(spec.manager, "twig");
    ASSERT_EQ(spec.services.size(), 1u);
    EXPECT_EQ(spec.services[0].service, "masstree");
    EXPECT_DOUBLE_EQ(spec.services[0].fraction, 0.5);
    // sweepSeed(42, pair=1) / sweepSeed(42, idx=7) of the fig05 sweep.
    EXPECT_EQ(spec.seed, 7297471543603743092ULL);
    ASSERT_TRUE(spec.managerSeed.has_value());
    EXPECT_EQ(*spec.managerSeed, 4082637488651899829ULL);
    const ManagerRegistry &registry = ManagerRegistry::builtin();
    EXPECT_EQ(spec.validate(registry), "");
}
#endif

TEST(Registry, UnknownManagerListsValidNames)
{
    const ManagerRegistry &registry = ManagerRegistry::builtin();
    EXPECT_EQ(registry.validate("nope", 1),
              "unknown manager 'nope', valid managers are: twig, "
              "static, hipster, heracles, parties");
    EXPECT_EQ(registry.validate("hipster", 2),
              "manager 'hipster' only supports a single service (2 "
              "requested)");
    EXPECT_EQ(registry.validate("heracles", 3),
              "manager 'heracles' only supports a single service (3 "
              "requested)");
    EXPECT_EQ(registry.validate("twig", 2), "");
}

TEST(ScenarioSpec, ValidateCatchesStructuralErrors)
{
    const ManagerRegistry &registry = ManagerRegistry::builtin();
    ScenarioSpec spec;
    spec.services.push_back([] {
        ServiceLoadSpec s;
        s.service = "masstree";
        return s;
    }());

    EXPECT_EQ(spec.validate(registry), "");

    auto broken = spec;
    broken.topology = "mesh";
    EXPECT_EQ(broken.validate(registry),
              "unknown topology 'mesh' (want single | cluster)");

    broken = spec;
    broken.steps = 0;
    EXPECT_EQ(broken.validate(registry), "scenario has zero steps");

    broken = spec;
    broken.services.clear();
    EXPECT_EQ(broken.validate(registry), "scenario hosts no services");

    broken = spec;
    broken.services[0].pattern = "sawtooth";
    EXPECT_EQ(broken.validate(registry),
              "unknown load pattern 'sawtooth' (want fixed | diurnal | "
              "step | ramp | trace)");

    broken = spec;
    broken.services[0].pattern = "trace";
    EXPECT_EQ(broken.validate(registry),
              "trace pattern needs trace_path and trace_column");

    broken = spec;
    ScenarioEvent event;
    event.afterSteps = 10;
    event.services.push_back(broken.services[0]);
    event.services.push_back(broken.services[0]);
    broken.events.push_back(event);
    EXPECT_EQ(broken.validate(registry),
              "event changes the service count (manager architecture "
              "is fixed at construction)");

    broken = spec;
    broken.manager = "static";
    ScenarioEvent swap;
    swap.afterSteps = 10;
    swap.transfers.push_back([] {
        TransferSpec t;
        t.serviceIndex = 0;
        t.service = "moses";
        return t;
    }());
    broken.events.push_back(swap);
    EXPECT_EQ(broken.validate(registry),
              "transfers need the twig manager");

    broken = spec;
    broken.topology = "cluster";
    broken.policy = "fastest";
    EXPECT_EQ(broken.validate(registry),
              "unknown routing policy 'fastest' (want static | wrr | "
              "p2c-latency)");

    broken = spec;
    broken.topology = "cluster";
    broken.domains = 0;
    EXPECT_EQ(broken.validate(registry),
              "cluster scenario with zero routing domains");

    broken = spec;
    broken.topology = "cluster";
    broken.nodes = 4;
    broken.domains = 8;
    EXPECT_EQ(broken.validate(registry),
              "more routing domains than nodes");
}

// --- golden runs: the engine reproduces hand-built harness runs ------

TEST(Engine, Fig05StaticCellMatchesHandBuiltRunner)
{
    ScenarioSpec spec;
    spec.name = "golden-static";
    ServiceLoadSpec svc;
    svc.service = "masstree";
    svc.fraction = 0.5;
    spec.services.push_back(svc);
    spec.manager = "static";
    spec.steps = 120;
    spec.window = 30;
    spec.seed = 7;
    const auto engine_run = Engine().run(spec);

    const sim::MachineConfig machine;
    const auto profile = services::masstree();
    sim::Server server(machine, 7);
    server.addService(profile, std::make_unique<sim::FixedLoad>(
                                   profile.maxLoadRps, 0.5));
    baselines::StaticManager manager(machine);
    ExperimentRunner runner(server, manager);
    RunOptions opt;
    opt.steps = 120;
    opt.summaryWindow = 30;
    const auto direct = runner.run(opt);

    EXPECT_DOUBLE_EQ(engine_run.single.metrics.energyJoules,
                     direct.metrics.energyJoules);
    EXPECT_DOUBLE_EQ(engine_run.single.metrics.meanPowerW,
                     direct.metrics.meanPowerW);
    EXPECT_DOUBLE_EQ(
        engine_run.single.metrics.services[0].qosGuaranteePct,
        direct.metrics.services[0].qosGuaranteePct);
    EXPECT_EQ(engine_run.managerName, "static");
}

TEST(Engine, Fig05TwigCellMatchesHandBuiltRunner)
{
    ScenarioSpec spec;
    spec.name = "golden-twig";
    ServiceLoadSpec svc;
    svc.service = "masstree";
    svc.fraction = 0.5;
    spec.services.push_back(svc);
    spec.manager = "twig";
    spec.managerSeed = 101;
    spec.steps = 150;
    spec.window = 40;
    spec.horizon = 150;
    spec.seed = 55;
    const auto engine_run = Engine().run(spec);

    const sim::MachineConfig machine;
    const auto profile = services::masstree();
    const Schedule schedule{150, 40, 150};
    auto manager =
        makeTwig(machine, {profile}, schedule, /*full=*/false, 101);
    sim::Server server(machine, 55);
    server.addService(profile, std::make_unique<sim::FixedLoad>(
                                   profile.maxLoadRps, 0.5));
    ExperimentRunner runner(server, *manager);
    RunOptions opt;
    opt.steps = 150;
    opt.summaryWindow = 40;
    const auto direct = runner.run(opt);

    EXPECT_DOUBLE_EQ(engine_run.single.metrics.energyJoules,
                     direct.metrics.energyJoules);
    EXPECT_DOUBLE_EQ(
        engine_run.single.metrics.services[0].qosGuaranteePct,
        direct.metrics.services[0].qosGuaranteePct);
    EXPECT_DOUBLE_EQ(
        engine_run.single.metrics.services[0].meanTardiness,
        direct.metrics.services[0].meanTardiness);
}

TEST(Engine, Fig12ColocCellMatchesHandBuiltRunner)
{
    const double coloc = 0.6;
    ScenarioSpec spec;
    spec.name = "golden-coloc";
    ServiceLoadSpec mt;
    mt.service = "masstree";
    mt.fraction = 0.2;
    mt.maxScale = coloc;
    spec.services.push_back(mt);
    ServiceLoadSpec mo;
    mo.service = "moses";
    mo.fraction = 0.8;
    mo.maxScale = coloc;
    spec.services.push_back(mo);
    spec.manager = "twig";
    spec.managerSeed = 9;
    spec.steps = 160;
    spec.window = 40;
    spec.horizon = 120;
    spec.seed = 11;
    const auto engine_run = Engine().run(spec);

    const sim::MachineConfig machine;
    const auto mt_p = services::masstree();
    const auto mo_p = services::moses();
    const Schedule schedule{160, 40, 120};
    auto manager =
        makeTwig(machine, {mt_p, mo_p}, schedule, /*full=*/false, 9);
    sim::Server server(machine, 11);
    server.addService(mt_p, std::make_unique<sim::FixedLoad>(
                                mt_p.maxLoadRps * coloc, 0.2));
    server.addService(mo_p, std::make_unique<sim::FixedLoad>(
                                mo_p.maxLoadRps * coloc, 0.8));
    ExperimentRunner runner(server, *manager);
    RunOptions opt;
    opt.steps = 160;
    opt.summaryWindow = 40;
    const auto direct = runner.run(opt);

    EXPECT_DOUBLE_EQ(engine_run.single.metrics.energyJoules,
                     direct.metrics.energyJoules);
    EXPECT_DOUBLE_EQ(engine_run.single.metrics.avgQosGuaranteePct(),
                     direct.metrics.avgQosGuaranteePct());
}

TEST(Engine, ClusterGoldenRunMatchesHandBuiltFleet)
{
    ScenarioSpec spec;
    spec.name = "golden-cluster";
    spec.topology = "cluster";
    ServiceLoadSpec svc;
    svc.service = "masstree";
    svc.fraction = 0.5;
    spec.services.push_back(svc);
    spec.manager = "static";
    spec.steps = 40;
    spec.window = 10;
    spec.seed = 5;
    spec.nodes = 2;
    spec.hetero = false;
    spec.policy = "static";
    const auto engine_run = Engine().run(spec);
    EXPECT_TRUE(engine_run.cluster);

    const sim::MachineConfig machine;
    const auto profile = services::masstree();
    cluster::ClusterConfig cfg;
    cfg.router.policy = cluster::RoutingPolicy::Static;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    // Two full-size nodes: fleet capacity is 2x one reference node.
    loads.push_back(std::make_unique<sim::FixedLoad>(
        profile.maxLoadRps * 2.0, 0.5));
    cluster::ClusterManager fleet(cfg, {profile}, std::move(loads), 5);
    for (std::size_t n = 0; n < 2; ++n) {
        fleet.addNode(
            machine,
            [](const sim::MachineConfig &m,
               const std::vector<sim::ServiceProfile> &,
               std::uint64_t) -> std::unique_ptr<core::TaskManager> {
                return std::make_unique<baselines::StaticManager>(m);
            });
    }
    const auto direct = fleet.run(40, 10);

    EXPECT_DOUBLE_EQ(engine_run.fleet.metrics.energyJoules,
                     direct.metrics.energyJoules);
    EXPECT_DOUBLE_EQ(engine_run.fleet.metrics.meanPowerW,
                     direct.metrics.meanPowerW);
    ASSERT_EQ(engine_run.fleet.metrics.windowP99Ms.size(), 1u);
    EXPECT_DOUBLE_EQ(engine_run.fleet.metrics.windowP99Ms[0],
                     direct.metrics.windowP99Ms[0]);

    // Determinism: the same spec reproduces the same metrics.
    const auto again = Engine().run(spec);
    EXPECT_DOUBLE_EQ(again.fleet.metrics.energyJoules,
                     engine_run.fleet.metrics.energyJoules);
}

TEST(Engine, SinksSeeEveryMeasuredStepInOrder)
{
    class CountingSink : public RecordSink
    {
      public:
        void
        begin(const ScenarioSpec &spec,
              const std::vector<sim::ServiceProfile> &profiles) override
        {
            beginCalls++;
            services = profiles.size();
        }
        void
        record(const StepRecord &rec) override
        {
            EXPECT_EQ(rec.step, steps); // strictly ordered from 0
            EXPECT_EQ(rec.p99Ms.size(), services);
            EXPECT_EQ(rec.cores.size(), services);
            steps++;
        }
        void end() override { endCalls++; }

        std::size_t beginCalls = 0, endCalls = 0, steps = 0;
        std::size_t services = 0;
    };

    ScenarioSpec spec;
    spec.name = "sink-order";
    ServiceLoadSpec svc;
    svc.service = "masstree";
    svc.fraction = 0.5;
    spec.services.push_back(svc);
    spec.manager = "static";
    spec.steps = 25;
    spec.window = 10;
    spec.seed = 3;

    CountingSink sink;
    EngineOptions opts;
    opts.sinks.push_back(&sink);
    Engine(opts).run(spec);
    EXPECT_EQ(sink.beginCalls, 1u);
    EXPECT_EQ(sink.endCalls, 1u);
    EXPECT_EQ(sink.steps, 25u);
}

TEST(Engine, InvalidSpecIsFatal)
{
    ScenarioSpec spec; // no services
    EXPECT_THROW(Engine().run(spec), common::FatalError);
}
