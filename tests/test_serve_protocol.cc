/** @file Unit tests for the twig_serve wire protocol
 * (src/serve/protocol.hh): framing round-trips, the strict
 * incremental parser under truncated / split / hostile input, and the
 * checksummed checkpoint frame file. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "serve/protocol.hh"

using namespace twig::serve;

namespace {

/** Feed @p wire to a fresh parser and collect every frame (copied
 * out: views die on the next append). */
struct Parsed
{
    std::vector<FrameType> types;
    std::vector<std::string> bodies;
    bool error = false;
};

Parsed
parseAll(const std::string &wire, std::size_t chunk = 0,
         std::size_t max_body = kDefaultMaxBody)
{
    FrameParser parser(max_body);
    Parsed out;
    const std::size_t step = chunk == 0 ? wire.size() : chunk;
    for (std::size_t off = 0; off < wire.size(); off += step) {
        parser.append(wire.data() + off,
                      std::min(step, wire.size() - off));
        FrameView frame;
        FrameParser::Status st;
        while ((st = parser.next(frame)) == FrameParser::Status::Frame) {
            out.types.push_back(frame.type);
            out.bodies.emplace_back(frame.body, frame.size);
        }
        if (st == FrameParser::Status::Error) {
            out.error = true;
            return out;
        }
    }
    return out;
}

/** A syntactically valid frame with an arbitrary header. */
std::string
rawFrame(std::uint32_t body_len, std::uint8_t type,
         std::uint8_t flags = 0, std::uint16_t reserved = 0,
         std::size_t actual_body = SIZE_MAX)
{
    std::string out;
    out.push_back(static_cast<char>(body_len & 0xff));
    out.push_back(static_cast<char>((body_len >> 8) & 0xff));
    out.push_back(static_cast<char>((body_len >> 16) & 0xff));
    out.push_back(static_cast<char>((body_len >> 24) & 0xff));
    out.push_back(static_cast<char>(type));
    out.push_back(static_cast<char>(flags));
    out.push_back(static_cast<char>(reserved & 0xff));
    out.push_back(static_cast<char>((reserved >> 8) & 0xff));
    out.append(actual_body == SIZE_MAX ? body_len : actual_body, 'x');
    return out;
}

} // namespace

TEST(ServeProtocol, RoundTripsEveryMessage)
{
    std::string wire;
    encodeHello(wire, HelloMsg{kProtocolVersion});
    HelloAckMsg hello_ack;
    hello_ack.numServices = 3;
    hello_ack.intervalMs = 12.5;
    encodeHelloAck(wire, hello_ack);
    BatchMsg batch;
    batch.tag = 0xdeadbeefcafe;
    batch.service = 2;
    batch.count = 1234;
    encodeBatch(wire, batch);
    BatchAckMsg batch_ack;
    batch_ack.tag = batch.tag;
    batch_ack.totalAccepted = 99999;
    encodeBatchAck(wire, batch_ack);
    encodeStatsReq(wire);
    StatsMsg stats;
    stats.step = 41;
    stats.powerW = 173.5;
    stats.offeredRps = {100.0, 250.5};
    stats.p99Ms = {1.25, 9.75};
    encodeStats(wire, stats);
    encodeBye(wire);
    encodeByeAck(wire);

    const auto parsed = parseAll(wire);
    ASSERT_FALSE(parsed.error);
    ASSERT_EQ(parsed.types.size(), 8u);
    EXPECT_EQ(parsed.types[0], FrameType::Hello);
    EXPECT_EQ(parsed.types[7], FrameType::ByeAck);

    auto view = [&parsed](std::size_t i) {
        FrameView v;
        v.type = parsed.types[i];
        v.body = parsed.bodies[i].data();
        v.size = parsed.bodies[i].size();
        return v;
    };
    HelloMsg hello2;
    ASSERT_TRUE(decodeHello(view(0), hello2));
    EXPECT_EQ(hello2.version, kProtocolVersion);
    HelloAckMsg hello_ack2;
    ASSERT_TRUE(decodeHelloAck(view(1), hello_ack2));
    EXPECT_EQ(hello_ack2.numServices, 3u);
    EXPECT_DOUBLE_EQ(hello_ack2.intervalMs, 12.5);
    BatchMsg batch2;
    ASSERT_TRUE(decodeBatch(view(2), batch2));
    EXPECT_EQ(batch2.tag, batch.tag);
    EXPECT_EQ(batch2.service, 2u);
    EXPECT_EQ(batch2.count, 1234u);
    BatchAckMsg batch_ack2;
    ASSERT_TRUE(decodeBatchAck(view(3), batch_ack2));
    EXPECT_EQ(batch_ack2.totalAccepted, 99999u);
    StatsMsg stats2;
    ASSERT_TRUE(decodeStats(view(5), stats2));
    EXPECT_EQ(stats2.step, 41u);
    EXPECT_DOUBLE_EQ(stats2.powerW, 173.5);
    ASSERT_EQ(stats2.offeredRps.size(), 2u);
    EXPECT_DOUBLE_EQ(stats2.offeredRps[1], 250.5);
    EXPECT_DOUBLE_EQ(stats2.p99Ms[0], 1.25);
}

TEST(ServeProtocol, ParsesByteAtATimeDelivery)
{
    // Split-across-read() delivery down to one byte per append must
    // produce the identical frame sequence.
    std::string wire;
    BatchMsg batch;
    batch.tag = 7;
    batch.service = 1;
    batch.count = 42;
    for (int i = 0; i < 5; ++i)
        encodeBatch(wire, batch);
    for (const std::size_t chunk : {1u, 2u, 3u, 7u}) {
        const auto parsed = parseAll(wire, chunk);
        ASSERT_FALSE(parsed.error) << "chunk " << chunk;
        ASSERT_EQ(parsed.types.size(), 5u) << "chunk " << chunk;
        for (const auto &body : parsed.bodies) {
            FrameView v{FrameType::Batch, body.data(), body.size()};
            BatchMsg m;
            ASSERT_TRUE(decodeBatch(v, m));
            EXPECT_EQ(m.count, 42u);
        }
    }
}

TEST(ServeProtocol, TruncatedFrameStaysPending)
{
    std::string wire;
    encodeHello(wire, HelloMsg{});
    FrameParser parser;
    // Everything but the last byte: no frame, no error.
    parser.append(wire.data(), wire.size() - 1);
    FrameView frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Status::NeedMore);
    EXPECT_FALSE(parser.failed());
    // The final byte completes it.
    parser.append(wire.data() + wire.size() - 1, 1);
    EXPECT_EQ(parser.next(frame), FrameParser::Status::Frame);
    EXPECT_EQ(frame.type, FrameType::Hello);
    EXPECT_EQ(parser.next(frame), FrameParser::Status::NeedMore);
}

TEST(ServeProtocol, RejectsOversizedLengthPrefixBeforeBuffering)
{
    // A hostile 4 GiB length prefix must fail from the header alone —
    // long before 4 GiB of body could arrive.
    const auto wire = rawFrame(0xffffffffu, 1, 0, 0, /*actual_body=*/0);
    FrameParser parser;
    parser.append(wire.data(), wire.size());
    FrameView frame;
    EXPECT_EQ(parser.next(frame), FrameParser::Status::Error);
    EXPECT_TRUE(parser.failed());
    EXPECT_NE(parser.error().find("body"), std::string::npos);
    // Poisoned: further input is refused, no resynchronisation.
    std::string good;
    encodeHello(good, HelloMsg{});
    parser.append(good.data(), good.size());
    EXPECT_EQ(parser.next(frame), FrameParser::Status::Error);
}

TEST(ServeProtocol, RejectsGarbage)
{
    const std::string garbage = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
    const auto parsed = parseAll(garbage);
    EXPECT_TRUE(parsed.error);
    EXPECT_TRUE(parsed.types.empty());
}

TEST(ServeProtocol, RejectsUnknownTypeFlagsAndReserved)
{
    {
        const auto parsed = parseAll(rawFrame(0, /*type=*/0));
        EXPECT_TRUE(parsed.error);
    }
    {
        const auto parsed = parseAll(rawFrame(0, /*type=*/200));
        EXPECT_TRUE(parsed.error);
    }
    {
        const auto parsed = parseAll(rawFrame(0, 1, /*flags=*/1));
        EXPECT_TRUE(parsed.error);
    }
    {
        const auto parsed =
            parseAll(rawFrame(0, 1, 0, /*reserved=*/7));
        EXPECT_TRUE(parsed.error);
    }
}

TEST(ServeProtocol, DecodersRejectWrongBodySizes)
{
    // A Batch body one byte short / long must not decode.
    std::string wire;
    BatchMsg batch;
    encodeBatch(wire, batch);
    const std::string body = wire.substr(kHeaderBytes);
    BatchMsg out;
    FrameView v{FrameType::Batch, body.data(), body.size() - 1};
    EXPECT_FALSE(decodeBatch(v, out));
    const std::string longer = body + 'x';
    FrameView v2{FrameType::Batch, longer.data(), longer.size()};
    EXPECT_FALSE(decodeBatch(v2, out));
    // And a Stats body must be exactly 20 + 16*services bytes.
    std::string swire;
    StatsMsg stats;
    stats.offeredRps = {1.0};
    stats.p99Ms = {2.0};
    encodeStats(swire, stats);
    const std::string sbody = swire.substr(kHeaderBytes);
    StatsMsg sout;
    FrameView v3{FrameType::Stats, sbody.data(), sbody.size() - 8};
    EXPECT_FALSE(decodeStats(v3, sout));
}

TEST(ServeProtocol, RejectsZeroCountBatch)
{
    std::string wire;
    BatchMsg batch;
    batch.count = 0;
    encodeBatch(wire, batch);
    const std::string body = wire.substr(kHeaderBytes);
    BatchMsg out;
    FrameView v{FrameType::Batch, body.data(), body.size()};
    EXPECT_FALSE(decodeBatch(v, out));
}

TEST(ServeProtocol, BuffersStayBounded)
{
    // Pipelining thousands of frames through small appends must not
    // leave consumed bytes behind (the parser compacts its buffer).
    FrameParser parser;
    std::string wire;
    BatchMsg batch;
    batch.count = 1;
    encodeBatch(wire, batch);
    FrameView frame;
    for (int i = 0; i < 10000; ++i) {
        parser.append(wire.data(), wire.size());
        ASSERT_EQ(parser.next(frame), FrameParser::Status::Frame);
        ASSERT_EQ(parser.next(frame), FrameParser::Status::NeedMore);
        ASSERT_LE(parser.buffered(), 2 * wire.size());
    }
    EXPECT_EQ(parser.framesParsed(), 10000u);
}

TEST(ServeProtocol, CheckpointFileRoundTripsAndDetectsCorruption)
{
    const std::string payload(100000, '\x5a');
    std::string frame;
    encodeCheckpointFrame(frame, payload);

    const std::string path =
        ::testing::TempDir() + "serve_ckpt_test.bin";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(frame.data(), 1, frame.size(), f),
                  frame.size());
        std::fclose(f);
    }
    std::string read_back;
    std::string error;
    ASSERT_TRUE(readCheckpointFile(path, read_back, error)) << error;
    EXPECT_EQ(read_back, payload);

    // Flip one payload byte: the FNV checksum must catch it.
    frame[kHeaderBytes + 8 + 50] ^= 0x01;
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(frame.data(), 1, frame.size(), f),
                  frame.size());
        std::fclose(f);
    }
    error.clear();
    EXPECT_FALSE(readCheckpointFile(path, read_back, error));
    EXPECT_NE(error.find("checksum"), std::string::npos);

    // A truncated file must fail cleanly, not crash.
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(frame.data(), 1, frame.size() / 2, f),
                  frame.size() / 2);
        std::fclose(f);
    }
    EXPECT_FALSE(readCheckpointFile(path, read_back, error));
    std::remove(path.c_str());

    EXPECT_FALSE(readCheckpointFile("/nonexistent/ckpt", read_back,
                                    error));
}
