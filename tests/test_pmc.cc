/** @file Unit tests for PMC synthesis (Table I counters). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/pmc.hh"

using namespace twig::sim;
using twig::common::Rng;

namespace {

ServiceProfile
profile()
{
    ServiceProfile p;
    p.name = "svc";
    p.instructionsPerReqM = 10.0;
    p.uopsPerInstr = 1.3;
    p.branchFraction = 0.2;
    p.branchMissRate = 0.02;
    p.l1dPerInstr = 0.4;
    p.l1iPerInstr = 0.1;
    p.llcAccessPerInstr = 0.02;
    p.llcBaseMissRate = 0.5;
    return p;
}

IntervalExecution
exec(std::size_t reqs = 1000, double busy = 5.0, double ghz = 2.0)
{
    IntervalExecution e;
    e.completedRequests = reqs;
    e.busyCoreSeconds = busy;
    e.freqGhz = ghz;
    e.llcMissFactor = 1.0;
    return e;
}

std::size_t
idx(Pmc c)
{
    return static_cast<std::size_t>(c);
}

} // namespace

TEST(Pmc, NamesMatchTableOne)
{
    EXPECT_EQ(pmcName(Pmc::UnhaltedCoreCycles), "UNHALTED_CORE_CYCLES");
    EXPECT_EQ(pmcName(Pmc::LlcMisses), "LLC_MISSES");
    EXPECT_EQ(pmcName(Pmc::CacheL1i), "PERF_COUNT_HW_CACHE_L1I");
    EXPECT_EQ(kNumPmcs, 11u);
}

TEST(Pmc, NoiselessKnownValues)
{
    MachineConfig m;
    PmcModel model(m, Rng(1));
    const auto v = model.synthesizeNoiseless(profile(), exec());

    // 1000 requests x 10 M instructions.
    EXPECT_DOUBLE_EQ(v[idx(Pmc::InstructionRetired)], 1e10);
    // 5 core-seconds at 2 GHz.
    EXPECT_DOUBLE_EQ(v[idx(Pmc::UnhaltedCoreCycles)], 1e10);
    // Reference clock = max DVFS (2.0 GHz by default).
    EXPECT_DOUBLE_EQ(v[idx(Pmc::UnhaltedReferenceCycles)], 1e10);
    EXPECT_DOUBLE_EQ(v[idx(Pmc::UopsRetired)], 1.3e10);
    EXPECT_DOUBLE_EQ(v[idx(Pmc::BranchInstructionsRetired)], 2e9);
    EXPECT_DOUBLE_EQ(v[idx(Pmc::MispredictedBranchRetired)], 4e7);
    EXPECT_DOUBLE_EQ(v[idx(Pmc::LlcMisses)], 1e10 * 0.02 * 0.5);
    EXPECT_DOUBLE_EQ(v[idx(Pmc::CacheL1d)], 4e9);
    EXPECT_DOUBLE_EQ(v[idx(Pmc::CacheL1i)], 1e9);
}

TEST(Pmc, IpcDropsWhenBusyTimeInflates)
{
    // Same completed work, more busy time (stalls): IPC must drop.
    MachineConfig m;
    PmcModel model(m, Rng(2));
    const auto clean = model.synthesizeNoiseless(profile(), exec());
    const auto stalled =
        model.synthesizeNoiseless(profile(), exec(1000, 7.5));
    const double ipc_clean = clean[idx(Pmc::InstructionRetired)] /
        clean[idx(Pmc::UnhaltedCoreCycles)];
    const double ipc_stalled = stalled[idx(Pmc::InstructionRetired)] /
        stalled[idx(Pmc::UnhaltedCoreCycles)];
    EXPECT_NEAR(ipc_stalled, ipc_clean / 1.5, 1e-9);
}

TEST(Pmc, LlcMissFactorScalesOnlyLlcMisses)
{
    MachineConfig m;
    PmcModel model(m, Rng(3));
    auto e = exec();
    const auto base = model.synthesizeNoiseless(profile(), e);
    e.llcMissFactor = 2.0;
    const auto hot = model.synthesizeNoiseless(profile(), e);
    EXPECT_DOUBLE_EQ(hot[idx(Pmc::LlcMisses)],
                     2.0 * base[idx(Pmc::LlcMisses)]);
    EXPECT_DOUBLE_EQ(hot[idx(Pmc::InstructionRetired)],
                     base[idx(Pmc::InstructionRetired)]);
    EXPECT_DOUBLE_EQ(hot[idx(Pmc::CacheL1d)], base[idx(Pmc::CacheL1d)]);
}

TEST(Pmc, FrequencyChangesCoreNotReferenceCycles)
{
    MachineConfig m;
    PmcModel model(m, Rng(4));
    const auto lo = model.synthesizeNoiseless(profile(),
                                              exec(1000, 5.0, 1.2));
    const auto hi = model.synthesizeNoiseless(profile(),
                                              exec(1000, 5.0, 2.0));
    EXPECT_LT(lo[idx(Pmc::UnhaltedCoreCycles)],
              hi[idx(Pmc::UnhaltedCoreCycles)]);
    EXPECT_DOUBLE_EQ(lo[idx(Pmc::UnhaltedReferenceCycles)],
                     hi[idx(Pmc::UnhaltedReferenceCycles)]);
}

TEST(Pmc, NoiseIsSmallAndNonNegative)
{
    MachineConfig m;
    PmcModel model(m, Rng(5), 0.02);
    const auto truth = model.synthesizeNoiseless(profile(), exec());
    for (int trial = 0; trial < 50; ++trial) {
        const auto noisy = model.synthesize(profile(), exec());
        for (std::size_t c = 0; c < kNumPmcs; ++c) {
            EXPECT_GE(noisy[c], 0.0);
            EXPECT_NEAR(noisy[c] / truth[c], 1.0, 0.15);
        }
    }
}

TEST(Pmc, ZeroWorkGivesZeroCounters)
{
    MachineConfig m;
    PmcModel model(m, Rng(6));
    const auto v = model.synthesizeNoiseless(profile(), exec(0, 0.0));
    for (std::size_t c = 0; c < kNumPmcs; ++c)
        EXPECT_DOUBLE_EQ(v[c], 0.0);
}
