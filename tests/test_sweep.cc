/** @file Determinism tests for the parallel experiment sweep. */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baselines/static_manager.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;
using namespace twig::harness;

namespace {

/** A real (small) experiment: one service under static management. */
RunResult
runExperiment(std::size_t index, std::uint64_t seed)
{
    sim::MachineConfig machine;
    sim::Server server(machine, static_cast<unsigned>(seed));
    const auto p =
        index % 2 == 0 ? services::masstree() : services::xapian();
    server.addService(
        p, std::make_unique<sim::FixedLoad>(
               p.maxLoadRps, 0.2 + 0.1 * static_cast<double>(index % 3)));
    baselines::StaticManager mgr(machine);
    ExperimentRunner runner(server, mgr);
    RunOptions opt;
    opt.steps = 15;
    opt.summaryWindow = 10;
    return runner.run(opt);
}

void
expectIdentical(const RunMetrics &a, const RunMetrics &b)
{
    // Bit-identical: every double compared with ==, not a tolerance.
    ASSERT_EQ(a.services.size(), b.services.size());
    for (std::size_t s = 0; s < a.services.size(); ++s) {
        EXPECT_EQ(a.services[s].name, b.services[s].name);
        EXPECT_EQ(a.services[s].qosGuaranteePct,
                  b.services[s].qosGuaranteePct);
        EXPECT_EQ(a.services[s].meanTardiness, b.services[s].meanTardiness);
        EXPECT_EQ(a.services[s].maxTardiness, b.services[s].maxTardiness);
        EXPECT_EQ(a.services[s].meanP99Ms, b.services[s].meanP99Ms);
        EXPECT_EQ(a.services[s].samples, b.services[s].samples);
    }
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.meanPowerW, b.meanPowerW);
    EXPECT_EQ(a.windowSteps, b.windowSteps);
}

} // namespace

TEST(SweepSeed, DependsOnlyOnBaseAndIndex)
{
    EXPECT_EQ(sweepSeed(42, 0), sweepSeed(42, 0));
    EXPECT_NE(sweepSeed(42, 0), sweepSeed(42, 1));
    EXPECT_NE(sweepSeed(42, 0), sweepSeed(43, 0));
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 1000; ++i)
        seen.insert(sweepSeed(7, i));
    EXPECT_EQ(seen.size(), 1000u) << "per-index seeds must not collide";
}

TEST(ParallelSweep, SerialAndParallelRunsAreBitIdentical)
{
    constexpr std::size_t kRuns = 6;

    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    serial_opts.baseSeed = 1234;
    ParallelSweep serial(serial_opts);

    SweepOptions parallel_opts;
    parallel_opts.jobs = 4;
    parallel_opts.baseSeed = 1234;
    ParallelSweep parallel(parallel_opts);

    const auto serial_results = serial.map<RunResult>(
        kRuns, [](std::size_t i, std::uint64_t seed) {
            return runExperiment(i, seed);
        });
    const auto parallel_results = parallel.map<RunResult>(
        kRuns, [](std::size_t i, std::uint64_t seed) {
            return runExperiment(i, seed);
        });

    ASSERT_EQ(serial_results.size(), kRuns);
    ASSERT_EQ(parallel_results.size(), kRuns);
    for (std::size_t i = 0; i < kRuns; ++i)
        expectIdentical(serial_results[i].metrics,
                        parallel_results[i].metrics);
}

TEST(ParallelSweep, RepeatedParallelRunsAreStable)
{
    SweepOptions opts;
    opts.jobs = 3;
    opts.baseSeed = 99;
    ParallelSweep sweep(opts);
    auto once = sweep.map<RunResult>(
        4, [](std::size_t i, std::uint64_t s) { return runExperiment(i, s); });
    auto twice = sweep.map<RunResult>(
        4, [](std::size_t i, std::uint64_t s) { return runExperiment(i, s); });
    for (std::size_t i = 0; i < once.size(); ++i)
        expectIdentical(once[i].metrics, twice[i].metrics);
}

TEST(ParallelSweep, RunOrdersResultsByTaskIndex)
{
    SweepOptions opts;
    opts.jobs = 4;
    ParallelSweep sweep(opts);
    std::vector<std::function<RunResult(std::uint64_t)>> tasks;
    for (std::size_t i = 0; i < 5; ++i) {
        tasks.push_back([i](std::uint64_t) {
            RunResult r;
            r.metrics.windowSteps = i; // marker for ordering
            return r;
        });
    }
    const auto results = sweep.run(tasks);
    ASSERT_EQ(results.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(results[i].metrics.windowSteps, i);
}

TEST(ParallelSweep, MapWithMoreJobsThanTasks)
{
    SweepOptions opts;
    opts.jobs = 16;
    ParallelSweep sweep(opts);
    const auto out = sweep.map<int>(
        3, [](std::size_t i, std::uint64_t) { return static_cast<int>(i); });
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 1);
    EXPECT_EQ(out[2], 2);
}
