/** @file Unit tests for the event-driven request queue simulator. */

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hh"
#include "common/rng.hh"
#include "stats/summary.hh"
#include "sim/queue_sim.hh"
#include "stats/summary.hh"

using namespace twig::sim;
using twig::common::Rng;

namespace {

ServiceProfile
testProfile()
{
    ServiceProfile p;
    p.name = "test";
    p.maxLoadRps = 1000.0;
    p.qosTargetMs = 20.0;
    p.baseServiceTimeMs = 5.0;
    p.serviceTimeCv = 0.3;
    p.freqExponent = 1.0;
    p.timeoutMs = 1000.0;
    return p;
}

CoreAssignment
dedicated(std::size_t n, double ghz = 2.0)
{
    CoreAssignment a;
    for (std::size_t i = 0; i < n; ++i)
        a.dedicatedCores.push_back(i);
    a.freqGhz = ghz;
    a.sharedFreqGhz = ghz;
    return a;
}

double
runP99(RequestQueueSim &sim, double rps, const CoreAssignment &a,
       std::size_t intervals, double inflation = 1.0)
{
    double p99 = 0.0;
    for (std::size_t i = 0; i < intervals; ++i)
        p99 = sim.run(static_cast<double>(i), 1.0, rps, a, inflation)
                  .p99Ms;
    return p99;
}

} // namespace

TEST(QueueSim, LightLoadLatencyNearServiceTime)
{
    RequestQueueSim sim(testProfile(), Rng(1), 2.0);
    // 100 RPS on 8 cores: rho = 100*5ms/8 = 0.0625 -> no queueing.
    const auto r = sim.run(0.0, 1.0, 100.0, dedicated(8), 1.0);
    EXPECT_GT(r.completed, 50u);
    EXPECT_NEAR(r.meanMs, 5.0, 1.5);
    EXPECT_LT(r.p99Ms, 15.0);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_LT(r.queuedAtEnd, 5u);
}

TEST(QueueSim, MoreCoresLowerLatency)
{
    // Near the knee, adding cores must cut the tail.
    RequestQueueSim sim_few(testProfile(), Rng(2), 2.0);
    RequestQueueSim sim_many(testProfile(), Rng(2), 2.0);
    const double p99_few = runP99(sim_few, 700.0, dedicated(4), 6);
    const double p99_many = runP99(sim_many, 700.0, dedicated(8), 6);
    EXPECT_LT(p99_many, p99_few);
}

TEST(QueueSim, HigherFrequencyLowerLatency)
{
    RequestQueueSim slow(testProfile(), Rng(3), 2.0);
    RequestQueueSim fast(testProfile(), Rng(3), 2.0);
    const double p99_slow = runP99(slow, 800.0, dedicated(6, 1.2), 6);
    const double p99_fast = runP99(fast, 800.0, dedicated(6, 2.0), 6);
    EXPECT_LT(p99_fast, p99_slow);
}

TEST(QueueSim, FrequencyScalesServiceTime)
{
    auto p = testProfile();
    p.serviceTimeCv = 0.01; // nearly deterministic
    RequestQueueSim sim(p, Rng(4), 2.0);
    const auto r = sim.run(0.0, 1.0, 50.0, dedicated(8, 1.0), 1.0);
    // At 1.0 GHz the 5 ms service takes 10 ms.
    EXPECT_NEAR(r.meanServiceTimeMs, 10.0, 0.5);
}

TEST(QueueSim, InterferenceInflatesServiceTime)
{
    auto p = testProfile();
    p.serviceTimeCv = 0.01;
    RequestQueueSim sim(p, Rng(5), 2.0);
    const auto r = sim.run(0.0, 1.0, 50.0, dedicated(8), 1.5);
    EXPECT_NEAR(r.meanServiceTimeMs, 7.5, 0.5);
}

TEST(QueueSim, OverloadEscalatesAcrossIntervals)
{
    auto p = testProfile();
    p.timeoutMs = 1e9; // no timeout: watch the raw blow-up
    RequestQueueSim sim(p, Rng(6), 2.0);
    // 2 cores at 1000 RPS: rho = 2.5 — hopeless.
    const auto r1 = sim.run(0.0, 1.0, 1000.0, dedicated(2), 1.0);
    const auto r2 = sim.run(1.0, 1.0, 1000.0, dedicated(2), 1.0);
    const auto r3 = sim.run(2.0, 1.0, 1000.0, dedicated(2), 1.0);
    EXPECT_GT(r2.p99Ms, r1.p99Ms);
    EXPECT_GT(r3.p99Ms, r2.p99Ms);
    EXPECT_GT(r3.queuedAtEnd, r1.queuedAtEnd);
}

TEST(QueueSim, TimeoutCensorsLatencyAndCountsDrops)
{
    RequestQueueSim sim(testProfile(), Rng(7), 2.0);
    std::size_t dropped = 0;
    double p99 = 0.0;
    for (int i = 0; i < 6; ++i) {
        const auto r = sim.run(i, 1.0, 1000.0, dedicated(2), 1.0);
        dropped += r.dropped;
        p99 = r.p99Ms;
    }
    EXPECT_GT(dropped, 100u);
    // Censored at timeout (plus the oldest-pending overload signal,
    // bounded by timeout + interval).
    EXPECT_LE(p99, 2100.0);
}

TEST(QueueSim, BacklogDrainsAfterRecovery)
{
    RequestQueueSim sim(testProfile(), Rng(8), 2.0);
    // Starve for two intervals, then allocate generously.
    sim.run(0.0, 1.0, 800.0, dedicated(1), 1.0);
    sim.run(1.0, 1.0, 800.0, dedicated(1), 1.0);
    EXPECT_GT(sim.backlog(), 100u);
    double p99 = 0.0;
    for (int i = 2; i < 7; ++i)
        p99 = sim.run(i, 1.0, 200.0, dedicated(12), 1.0).p99Ms;
    EXPECT_LT(sim.backlog(), 10u);
    EXPECT_LT(p99, 30.0);
}

TEST(QueueSim, SharedCoresAreSlower)
{
    auto p = testProfile();
    p.serviceTimeCv = 0.05;
    RequestQueueSim ded(p, Rng(9), 2.0);
    RequestQueueSim shr(p, Rng(9), 2.0);

    CoreAssignment shared;
    shared.sharedCores = {0, 1, 2, 3};
    shared.shareCount = 2;
    shared.freqGhz = 2.0;
    shared.sharedFreqGhz = 2.0;
    shared.sharedUsableCores = 2.0; // co-runner eats half the pool

    const double p99_ded = runP99(ded, 300.0, dedicated(4), 5);
    double p99_shr = 0.0;
    for (int i = 0; i < 5; ++i)
        p99_shr = shr.run(i, 1.0, 300.0, shared, 1.0).p99Ms;
    EXPECT_GT(p99_shr, p99_ded);
}

TEST(QueueSim, ZeroCoresJustQueues)
{
    RequestQueueSim sim(testProfile(), Rng(10), 2.0);
    CoreAssignment none;
    const auto r = sim.run(0.0, 1.0, 100.0, none, 1.0);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_GT(r.queuedAtEnd, 50u);
    EXPECT_GT(r.p99Ms, 0.0);
}

TEST(QueueSim, DeterministicGivenSeed)
{
    RequestQueueSim a(testProfile(), Rng(11), 2.0);
    RequestQueueSim b(testProfile(), Rng(11), 2.0);
    const auto ra = a.run(0.0, 1.0, 500.0, dedicated(6), 1.0);
    const auto rb = b.run(0.0, 1.0, 500.0, dedicated(6), 1.0);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_DOUBLE_EQ(ra.p99Ms, rb.p99Ms);
    EXPECT_DOUBLE_EQ(ra.busyCoreSeconds, rb.busyCoreSeconds);
}

TEST(QueueSim, BusyTimeTracksWork)
{
    auto p = testProfile();
    p.serviceTimeCv = 0.05;
    RequestQueueSim sim(p, Rng(12), 2.0);
    const auto r = sim.run(0.0, 1.0, 400.0, dedicated(8), 1.0);
    // ~400 requests x 5 ms = ~2.0 core-seconds.
    EXPECT_NEAR(r.busyCoreSeconds,
                static_cast<double>(r.completed) * 0.005, 0.3);
}

TEST(QueueSim, ResetClearsBacklogAndWindow)
{
    RequestQueueSim sim(testProfile(), Rng(13), 2.0);
    sim.run(0.0, 1.0, 900.0, dedicated(1), 1.0);
    EXPECT_GT(sim.backlog(), 0u);
    sim.reset();
    EXPECT_EQ(sim.backlog(), 0u);
}

TEST(QueueSim, Validation)
{
    RequestQueueSim sim(testProfile(), Rng(14), 2.0);
    EXPECT_THROW(sim.run(0.0, 0.0, 10.0, dedicated(1), 1.0),
                 twig::common::FatalError);
    EXPECT_THROW(sim.run(0.0, 1.0, 10.0, dedicated(1), 0.5),
                 twig::common::FatalError);
    auto bad = testProfile();
    bad.baseServiceTimeMs = 0.0;
    EXPECT_THROW(RequestQueueSim(bad, Rng(15), 2.0),
                 twig::common::FatalError);
    EXPECT_THROW(RequestQueueSim(testProfile(), Rng(16), 0.0),
                 twig::common::FatalError);
}

class QueueLoadSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(QueueLoadSweep, ServedMatchesOfferedUnderCapacity)
{
    // Property: below the knee, completions track arrivals.
    RequestQueueSim sim(testProfile(), Rng(17), 2.0);
    const double rps = GetParam();
    std::size_t arrivals = 0, completed = 0;
    for (int i = 0; i < 10; ++i) {
        const auto r = sim.run(i, 1.0, rps, dedicated(12), 1.0);
        arrivals += r.arrivals;
        completed += r.completed;
    }
    EXPECT_NEAR(static_cast<double>(completed),
                static_cast<double>(arrivals),
                0.05 * static_cast<double>(arrivals) + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Loads, QueueLoadSweep,
                         ::testing::Values(100.0, 400.0, 800.0, 1200.0,
                                           1600.0, 2000.0));

TEST(QueueSim, DispatchAvoidsSlowFractionalCore)
{
    // Regression test: with a fractional (slow) pool core present, the
    // dispatcher must prefer full-speed cores at low load — an
    // earliest-free rule funnels requests onto the slow core because
    // it is idle precisely when it is slow.
    auto p = testProfile();
    p.serviceTimeCv = 0.05;
    RequestQueueSim sim(p, Rng(18), 2.0);

    CoreAssignment mixed;
    mixed.dedicatedCores = {0, 1, 2, 3};
    mixed.sharedCores = {4};
    mixed.shareCount = 2;
    mixed.sharedUsableCores = 0.1; // a 10x-slow fractional core
    mixed.freqGhz = mixed.sharedFreqGhz = 2.0;

    double p99 = 0.0;
    for (int i = 0; i < 6; ++i)
        p99 = sim.run(i, 1.0, 100.0, mixed, 1.0).p99Ms;
    // 100 RPS on 4 full cores: no queueing; a request on the slow core
    // would take ~50 ms and poison the p99.
    EXPECT_LT(p99, 15.0);
}

TEST(QueueSim, SlowCoreUsedWhenFastOnesSaturate)
{
    // Work conservation: when the full-speed cores are overloaded, the
    // fractional core still contributes capacity.
    auto p = testProfile();
    p.serviceTimeCv = 0.05;
    RequestQueueSim with_frac(p, Rng(19), 2.0);
    RequestQueueSim without(p, Rng(19), 2.0);

    CoreAssignment mixed;
    mixed.dedicatedCores = {0, 1, 2, 3};
    mixed.sharedCores = {4};
    mixed.shareCount = 2;
    mixed.sharedUsableCores = 0.5;
    mixed.freqGhz = mixed.sharedFreqGhz = 2.0;

    std::size_t completed_with = 0, completed_without = 0;
    for (int i = 0; i < 8; ++i) {
        completed_with +=
            with_frac.run(i, 1.0, 900.0, mixed, 1.0).completed;
        completed_without +=
            without.run(i, 1.0, 900.0, dedicated(4), 1.0).completed;
    }
    EXPECT_GT(completed_with, completed_without);
}

class LittlesLawSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(LittlesLawSweep, MeanLatencyMatchesLittlesLaw)
{
    // Property: in steady state, mean time in system ~= L / lambda.
    // We check the weaker, directly-measurable form: mean latency is
    // at least the mean service time and within a small factor of the
    // M/M/c-style expectation at moderate utilisation.
    auto p = testProfile();
    p.serviceTimeCv = 0.4;
    RequestQueueSim sim(p, Rng(21), 2.0);
    const double rho = GetParam();
    const double rps = rho * 12.0 / (p.baseServiceTimeMs * 1e-3);

    twig::stats::RunningStats lat;
    for (int i = 0; i < 12; ++i) {
        const auto r = sim.run(i, 1.0, rps, dedicated(12), 1.0);
        if (i >= 2) {
            for (double l : r.latenciesMs)
                lat.add(l);
        }
    }
    EXPECT_GT(lat.mean(), 0.9 * p.baseServiceTimeMs);
    // Waiting grows with rho, but stays bounded well below the knee.
    EXPECT_LT(lat.mean(), 3.0 * p.baseServiceTimeMs);
}

INSTANTIATE_TEST_SUITE_P(Utilisations, LittlesLawSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.75));
