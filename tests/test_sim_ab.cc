/**
 * @file
 * A/B bit-identity tests for the optimized simulation hot path.
 *
 * Every queue simulator carries its original (seed) algorithm behind
 * RequestQueueSim::setReferencePath; these tests step two same-seeded
 * servers — one per path — through long colocated runs and require
 * *exact* equality (operator== on doubles, no tolerance) of every
 * telemetry field at every interval. Any divergence in RNG draw order,
 * dispatch policy, QoS-window handling or power attribution fails
 * loudly here.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/mapper.hh"
#include "core/task_manager.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/machine.hh"
#include "sim/server.hh"

using namespace twig;

namespace {

std::unique_ptr<sim::Server>
makeColocatedServer(const sim::MachineConfig &machine, bool reference,
                    double load_fraction, std::uint64_t seed)
{
    auto server = std::make_unique<sim::Server>(machine, seed);
    server->setReferenceSimPath(reference);
    for (const auto &profile :
         {services::masstree(), services::xapian(), services::moses(),
          services::silo()}) {
        server->addService(profile, std::make_unique<sim::FixedLoad>(
                                        profile.maxLoadRps,
                                        load_fraction));
    }
    return server;
}

void
expectIdenticalStats(const sim::ServerIntervalStats &a,
                     const sim::ServerIntervalStats &b, std::size_t step)
{
    ASSERT_EQ(a.services.size(), b.services.size());
    EXPECT_EQ(a.step, b.step);
    EXPECT_EQ(a.socketPowerW, b.socketPowerW) << "step " << step;
    EXPECT_EQ(a.energyJoules, b.energyJoules) << "step " << step;
    for (std::size_t i = 0; i < a.services.size(); ++i) {
        const auto &sa = a.services[i];
        const auto &sb = b.services[i];
        EXPECT_EQ(sa.name, sb.name);
        EXPECT_EQ(sa.offeredRps, sb.offeredRps) << "step " << step;
        EXPECT_EQ(sa.p99Ms, sb.p99Ms)
            << "step " << step << " service " << sa.name;
        EXPECT_EQ(sa.p99InstantMs, sb.p99InstantMs)
            << "step " << step << " service " << sa.name;
        EXPECT_EQ(sa.meanLatencyMs, sb.meanLatencyMs)
            << "step " << step << " service " << sa.name;
        EXPECT_EQ(sa.completed, sb.completed) << "step " << step;
        EXPECT_EQ(sa.arrivals, sb.arrivals) << "step " << step;
        EXPECT_EQ(sa.dropped, sb.dropped) << "step " << step;
        EXPECT_EQ(sa.queuedAtEnd, sb.queuedAtEnd) << "step " << step;
        EXPECT_EQ(sa.busyCoreSeconds, sb.busyCoreSeconds)
            << "step " << step;
        EXPECT_EQ(sa.effectiveCores, sb.effectiveCores) << "step " << step;
        EXPECT_EQ(sa.freqGhz, sb.freqGhz) << "step " << step;
        EXPECT_EQ(sa.attributedPowerW, sb.attributedPowerW)
            << "step " << step;
        for (std::size_t p = 0; p < sa.pmcs.size(); ++p)
            EXPECT_EQ(sa.pmcs[p], sb.pmcs[p])
                << "step " << step << " pmc " << p;
    }
}

/** Drive both servers through @p steps intervals under a cycling
 * assignment schedule and assert bit-identical telemetry throughout. */
void
runAb(double load_fraction,
      const std::vector<std::vector<core::ResourceRequest>> &schedule,
      std::size_t steps, std::uint64_t seed)
{
    sim::MachineConfig machine;
    auto optimized =
        makeColocatedServer(machine, false, load_fraction, seed);
    auto reference =
        makeColocatedServer(machine, true, load_fraction, seed);

    core::Mapper mapper_a(machine);
    core::Mapper mapper_b(machine);
    std::vector<sim::CoreAssignment> assign_a, assign_b;
    for (std::size_t t = 0; t < steps; ++t) {
        const auto &requests = schedule[t % schedule.size()];
        mapper_a.mapInto(requests, assign_a);
        mapper_b.mapInto(requests, assign_b);
        const auto &sa = optimized->runInterval(assign_a);
        const auto &sb = reference->runInterval(assign_b);
        expectIdenticalStats(sa, sb, t);
        if (::testing::Test::HasFailure())
            FAIL() << "first divergence at step " << t;
    }
}

} // namespace

TEST(SimAb, ColocatedRunIsBitIdenticalOver500Intervals)
{
    // Four colocated services, moderate load, assignments cycling
    // between a dedicated-heavy and a shared-pool-heavy split: covers
    // dedicated cores, full shared cores and fractional shares.
    const std::size_t max_dvfs = sim::MachineConfig{}.dvfs.numStates() - 1;
    const std::vector<std::vector<core::ResourceRequest>> schedule = {
        {{4, max_dvfs}, {4, max_dvfs}, {4, max_dvfs}, {4, max_dvfs}},
        {{8, max_dvfs}, {8, max_dvfs - 1}, {8, max_dvfs}, {8, max_dvfs - 1}},
        {{2, max_dvfs - 2}, {6, max_dvfs}, {10, max_dvfs - 1}, {3, max_dvfs}},
    };
    runAb(0.5, schedule, 500, 1234);
}

TEST(SimAb, OverloadedSharedPoolIsBitIdentical)
{
    // Offered load above capacity with heavily oversubscribed core
    // requests: exercises queue growth, timeouts/drops and the
    // overload p99 fallback on both paths.
    const std::size_t max_dvfs = sim::MachineConfig{}.dvfs.numStates() - 1;
    const std::vector<std::vector<core::ResourceRequest>> schedule = {
        {{9, max_dvfs}, {9, max_dvfs}, {9, max_dvfs}, {9, max_dvfs}},
        {{1, 0}, {1, 0}, {1, 0}, {1, 0}},
    };
    runAb(1.1, schedule, 120, 99);
}
