/** @file Unit tests for the experiment harness. */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/static_manager.hh"
#include "harness/metrics.hh"
#include "harness/profiling.hh"
#include "harness/runner.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;
using namespace twig::harness;

TEST(Metrics, AccumulatorComputesGuaranteeAndTardiness)
{
    MetricsAccumulator acc({"svc"}, {10.0});
    acc.add({5.0}, 100.0, 1.0);  // met, tardiness 0.5
    acc.add({20.0}, 100.0, 1.0); // violated, tardiness 2.0
    acc.add({10.0}, 50.0, 1.0);  // met (== target), tardiness 1.0
    const auto m = acc.finish();
    ASSERT_EQ(m.services.size(), 1u);
    EXPECT_NEAR(m.services[0].qosGuaranteePct, 200.0 / 3.0, 1e-9);
    EXPECT_NEAR(m.services[0].meanTardiness, 3.5 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(m.services[0].maxTardiness, 2.0);
    EXPECT_NEAR(m.services[0].meanP99Ms, 35.0 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(m.energyJoules, 250.0);
    EXPECT_NEAR(m.meanPowerW, 250.0 / 3.0, 1e-9);
    EXPECT_EQ(m.windowSteps, 3u);
}

TEST(Metrics, MultiServiceAverage)
{
    MetricsAccumulator acc({"a", "b"}, {10.0, 100.0});
    acc.add({5.0, 200.0}, 10.0, 1.0); // a met, b violated
    const auto m = acc.finish();
    EXPECT_DOUBLE_EQ(m.services[0].qosGuaranteePct, 100.0);
    EXPECT_DOUBLE_EQ(m.services[1].qosGuaranteePct, 0.0);
    EXPECT_DOUBLE_EQ(m.avgQosGuaranteePct(), 50.0);
}

TEST(Metrics, Validation)
{
    EXPECT_THROW(MetricsAccumulator({"a"}, {1.0, 2.0}),
                 twig::common::FatalError);
    EXPECT_THROW(MetricsAccumulator({}, {}), twig::common::FatalError);
    MetricsAccumulator acc({"a"}, {1.0});
    EXPECT_THROW(acc.add({1.0, 2.0}, 1.0, 1.0),
                 twig::common::FatalError);
}

TEST(Runner, StaticManagerMeetsQosAtModerateLoad)
{
    sim::MachineConfig machine;
    sim::Server server(machine, 21);
    const auto p = services::masstree();
    server.addService(p,
                      std::make_unique<sim::FixedLoad>(p.maxLoadRps, 0.5));
    baselines::StaticManager mgr(machine);
    ExperimentRunner runner(server, mgr);

    RunOptions opt;
    opt.steps = 30;
    opt.summaryWindow = 20;
    const auto result = runner.run(opt);
    EXPECT_EQ(result.metrics.windowSteps, 20u);
    EXPECT_GT(result.metrics.services[0].qosGuaranteePct, 90.0);
    EXPECT_GT(result.metrics.energyJoules, 0.0);
}

TEST(Runner, TraceRecordsEveryStep)
{
    sim::MachineConfig machine;
    sim::Server server(machine, 22);
    const auto p = services::xapian();
    server.addService(p,
                      std::make_unique<sim::FixedLoad>(p.maxLoadRps, 0.2));
    baselines::StaticManager mgr(machine);
    ExperimentRunner runner(server, mgr);

    RunOptions opt;
    opt.steps = 12;
    opt.summaryWindow = 12;
    opt.recordTrace = true;
    const auto result = runner.run(opt);
    ASSERT_EQ(result.trace.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(result.trace[i].step, i);
        ASSERT_EQ(result.trace[i].cores.size(), 1u);
        EXPECT_EQ(result.trace[i].cores[0], machine.numCores);
        EXPECT_GT(result.trace[i].socketPowerW, 0.0);
    }
}

TEST(Runner, OnStepHookFires)
{
    sim::MachineConfig machine;
    sim::Server server(machine, 23);
    const auto p = services::moses();
    server.addService(p,
                      std::make_unique<sim::FixedLoad>(p.maxLoadRps, 0.2));
    baselines::StaticManager mgr(machine);
    ExperimentRunner runner(server, mgr);

    std::size_t calls = 0;
    RunOptions opt;
    opt.steps = 7;
    opt.summaryWindow = 7;
    opt.onStep = [&calls](std::size_t,
                          const sim::ServerIntervalStats &) { ++calls; };
    runner.run(opt);
    EXPECT_EQ(calls, 7u);
}

TEST(Runner, OnStepOrderingAndTraceContentsAgree)
{
    sim::MachineConfig machine;
    sim::Server server(machine, 24);
    const auto p = services::masstree();
    server.addService(p,
                      std::make_unique<sim::FixedLoad>(p.maxLoadRps, 0.4));
    baselines::StaticManager mgr(machine);
    ExperimentRunner runner(server, mgr);

    // The hook fires once per interval, in step order, with the stats
    // of the interval that just ran.
    std::vector<std::size_t> hook_steps;
    std::vector<double> hook_p99, hook_rps, hook_power;
    RunOptions opt;
    opt.steps = 9;
    opt.summaryWindow = 9;
    opt.recordTrace = true;
    opt.onStep = [&](std::size_t step,
                     const sim::ServerIntervalStats &stats) {
        hook_steps.push_back(step);
        ASSERT_EQ(stats.services.size(), 1u);
        hook_p99.push_back(stats.services[0].p99Ms);
        hook_rps.push_back(stats.services[0].offeredRps);
        hook_power.push_back(stats.socketPowerW);
    };
    const auto result = runner.run(opt);

    ASSERT_EQ(hook_steps.size(), 9u);
    ASSERT_EQ(result.trace.size(), 9u);
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_EQ(hook_steps[i], i);
        const auto &rec = result.trace[i];
        EXPECT_EQ(rec.step, i);
        // Trace rows and the hook observe the same interval.
        EXPECT_DOUBLE_EQ(rec.p99Ms[0], hook_p99[i]);
        EXPECT_DOUBLE_EQ(rec.offeredRps[0], hook_rps[i]);
        EXPECT_DOUBLE_EQ(rec.socketPowerW, hook_power[i]);
        // The static manager requests everything, every interval.
        ASSERT_EQ(rec.cores.size(), 1u);
        ASSERT_EQ(rec.dvfs.size(), 1u);
        EXPECT_EQ(rec.cores[0], machine.numCores);
        EXPECT_EQ(rec.dvfs[0], machine.dvfs.maxIndex());
    }
}

TEST(Runner, SummaryWindowLargerThanRunIsWholeRun)
{
    sim::MachineConfig machine;
    sim::Server server(machine, 24);
    const auto p = services::imgdnn();
    server.addService(p,
                      std::make_unique<sim::FixedLoad>(p.maxLoadRps, 0.2));
    baselines::StaticManager mgr(machine);
    ExperimentRunner runner(server, mgr);
    RunOptions opt;
    opt.steps = 5;
    opt.summaryWindow = 100;
    const auto result = runner.run(opt);
    EXPECT_EQ(result.metrics.windowSteps, 5u);
}

TEST(Runner, Validation)
{
    sim::MachineConfig machine;
    sim::Server server(machine, 25);
    baselines::StaticManager mgr(machine);
    ExperimentRunner runner(server, mgr);
    RunOptions opt;
    opt.steps = 0;
    EXPECT_THROW(runner.run(opt), twig::common::FatalError);
    opt.steps = 5;
    opt.summaryWindow = 0;
    EXPECT_THROW(runner.run(opt), twig::common::FatalError);
    opt.summaryWindow = 5;
    // Server hosts no services.
    EXPECT_THROW(runner.run(opt), twig::common::FatalError);
}

TEST(Profiling, CampaignCoversTheGrid)
{
    sim::MachineConfig machine;
    PowerProfilingOptions opt;
    opt.loadLevels = {0.2, 0.5};
    opt.coreCounts = {4, 12};
    opt.dvfsStates = {0, 8};
    opt.intervalsPerConfig = 2;
    const auto samples = profileServicePower(services::masstree(),
                                             machine, opt, 31);
    // Saturated configurations are dropped (4 cores at 1.2 GHz cannot
    // sustain 50% of masstree's max load), so the grid is an upper
    // bound.
    EXPECT_LE(samples.size(), 2u * 2u * 2u);
    EXPECT_GE(samples.size(), 4u);
    for (const auto &s : samples) {
        EXPECT_GT(s.dynamicPowerW, 0.0);
        EXPECT_GE(s.numCores, 4.0);
        EXPECT_LE(s.numCores, 12.0);
    }
}

TEST(Profiling, PowerGrowsWithCoresAndDvfs)
{
    sim::MachineConfig machine;
    PowerProfilingOptions opt;
    opt.loadLevels = {0.5};
    opt.coreCounts = {4, 16};
    opt.dvfsStates = {0, 8};
    opt.intervalsPerConfig = 3;
    const auto samples = profileServicePower(services::moses(),
                                             machine, opt, 32);
    auto find = [&](double cores,
                    double ghz) -> const core::PowerSample * {
        for (const auto &s : samples) {
            if (s.numCores == cores && std::abs(s.dvfsGhz - ghz) < 1e-9)
                return &s;
        }
        return nullptr;
    };
    const auto *lo = find(16, 1.2);
    const auto *hi = find(16, 2.0);
    ASSERT_NE(lo, nullptr);
    ASSERT_NE(hi, nullptr);
    EXPECT_LT(lo->dynamicPowerW, hi->dynamicPowerW);
}

TEST(Profiling, MakeTwigSpecProducesUsableModel)
{
    sim::MachineConfig machine;
    const auto spec = makeTwigSpec(services::masstree(), machine, 33);
    EXPECT_EQ(spec.name, "masstree");
    EXPECT_DOUBLE_EQ(spec.qosTargetMs, 36.0);
    const double p = spec.powerModel.predict(0.5, 10.0, 1.8);
    EXPECT_GT(p, 5.0);
    EXPECT_LT(p, 120.0);
}

TEST(Profiling, MakeBaselineSpecCopiesFields)
{
    const auto spec = makeBaselineSpec(services::xapian());
    EXPECT_EQ(spec.name, "xapian");
    EXPECT_DOUBLE_EQ(spec.qosTargetMs, 136.0);
    EXPECT_DOUBLE_EQ(spec.maxLoadRps, 1000.0);
}
