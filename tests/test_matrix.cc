/** @file Unit tests for the dense matrix primitives. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "nn/matrix.hh"

using namespace twig::nn;

namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, twig::common::Rng &rng)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.raw()[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    return m;
}

void
expectNear(const Matrix &got, const Matrix &want, double tol)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_NEAR(got.raw()[i], want.raw()[i], tol)
            << "element " << i;
}

} // namespace

TEST(Matrix, ConstructAndIndex)
{
    Matrix m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
    m(0, 1) = 7.0f;
    EXPECT_FLOAT_EQ(m(0, 1), 7.0f);
}

TEST(Matrix, FillAndScale)
{
    Matrix m(2, 2);
    m.fill(3.0f);
    m.scaleInPlace(0.5f);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_FLOAT_EQ(m.raw()[i], 1.5f);
}

TEST(Matrix, AddInPlace)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 2.0f);
    a.addInPlace(b);
    EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(a(1, 1), 3.0f);
}

TEST(Matrix, AddShapeMismatchPanics)
{
    Matrix a(2, 2), b(2, 3);
    EXPECT_THROW(a.addInPlace(b), twig::common::PanicError);
}

TEST(Matrix, RowPtrPointsIntoStorage)
{
    Matrix m(3, 4);
    m(2, 1) = 9.0f;
    EXPECT_FLOAT_EQ(m.rowPtr(2)[1], 9.0f);
}

TEST(Matmul, KnownProduct)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    Matrix a(2, 2), b(2, 2), out;
    a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
    b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
    matmul(a, b, out);
    EXPECT_FLOAT_EQ(out(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(out(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(out(1, 1), 50.0f);
}

TEST(Matmul, RectangularShapes)
{
    Matrix a(1, 3, 1.0f), b(3, 2, 2.0f), out;
    matmul(a, b, out);
    EXPECT_EQ(out.rows(), 1u);
    EXPECT_EQ(out.cols(), 2u);
    EXPECT_FLOAT_EQ(out(0, 0), 6.0f);
}

TEST(Matmul, InnerDimensionMismatchPanics)
{
    Matrix a(2, 3), b(2, 2), out;
    EXPECT_THROW(matmul(a, b, out), twig::common::PanicError);
}

TEST(Matmul, TransposeBMatchesExplicit)
{
    // a [2x3] * b^T where b is [4x3].
    Matrix a(2, 3), b(4, 3), expect, bt(3, 4), out;
    float v = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        a.raw()[i] = v += 1.0f;
    for (std::size_t i = 0; i < b.size(); ++i)
        b.raw()[i] = v -= 0.5f;
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            bt(c, r) = b(r, c);
    matmul(a, bt, expect);
    matmulTransposeB(a, b, out);
    ASSERT_EQ(out.rows(), 2u);
    ASSERT_EQ(out.cols(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out.raw()[i], expect.raw()[i], 1e-4);
}

TEST(Matmul, TransposeAMatchesExplicit)
{
    // a^T [3x2] * b [3x4] where a is [3x2].
    Matrix a(3, 2), b(3, 4), at(2, 3), expect, out;
    float v = 1.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        a.raw()[i] = v *= 1.1f;
    for (std::size_t i = 0; i < b.size(); ++i)
        b.raw()[i] = v -= 0.2f;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            at(c, r) = a(r, c);
    matmul(at, b, expect);
    matmulTransposeA(a, b, out);
    ASSERT_EQ(out.rows(), 2u);
    ASSERT_EQ(out.cols(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out.raw()[i], expect.raw()[i], 1e-4);
}

TEST(Matmul, OutputIsOverwrittenNotAccumulated)
{
    Matrix a(1, 1), b(1, 1), out(1, 1, 99.0f);
    a(0, 0) = 2.0f;
    b(0, 0) = 3.0f;
    matmul(a, b, out);
    EXPECT_FLOAT_EQ(out(0, 0), 6.0f);
}

TEST(MatrixResize, KeepsCapacityAndSkipsZeroFill)
{
    Matrix m(8, 8, 7.0f);
    const float *storage = m.data();
    // Shrinking must not reallocate: scratch matrices cycle between
    // steady-state shapes without touching the heap.
    m.resize(4, 4);
    EXPECT_EQ(m.data(), storage);
    EXPECT_EQ(m.rows(), 4u);
    EXPECT_EQ(m.cols(), 4u);
    // Contents are unspecified, but the old storage was NOT zeroed —
    // that is the contract change callers rely on for speed.
    EXPECT_FLOAT_EQ(m.raw()[0], 7.0f);
    // Growing back within capacity must not reallocate either.
    m.resize(8, 8);
    EXPECT_EQ(m.data(), storage);
    // Explicit zeroing is the caller's job now.
    m.zero();
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_FLOAT_EQ(m.raw()[i], 0.0f);
}

// ---------------------------------------------------------------------------
// Randomized equivalence of the tiled kernels against the naive
// reference implementation, over shapes chosen to hit every edge of
// the register tiling: 1x1, tall-skinny, wide, and dims that are not
// multiples of the 6x16 tile.
// ---------------------------------------------------------------------------

struct Shape
{
    std::size_t m, k, n;
};

class TiledKernelEquivalence : public ::testing::TestWithParam<Shape>
{
};

TEST_P(TiledKernelEquivalence, MatmulMatchesReference)
{
    const auto [m, k, n] = GetParam();
    twig::common::Rng rng(m * 73856093 + k * 19349663 + n * 83492791);
    const Matrix a = randomMatrix(m, k, rng);
    const Matrix b = randomMatrix(k, n, rng);
    Matrix want, got(3, 3, 42.0f); // stale shape/content must not leak
    reference::matmul(a, b, want);
    matmul(a, b, got);
    expectNear(got, want, 1e-3);
}

TEST_P(TiledKernelEquivalence, TransposeBMatchesReference)
{
    const auto [m, k, n] = GetParam();
    twig::common::Rng rng(m * 2654435761 + k * 40503 + n);
    const Matrix a = randomMatrix(m, k, rng);
    const Matrix b = randomMatrix(n, k, rng);
    Matrix want, got;
    reference::matmulTransposeB(a, b, want);
    matmulTransposeB(a, b, got);
    expectNear(got, want, 1e-3);
}

TEST_P(TiledKernelEquivalence, TransposeAMatchesReference)
{
    const auto [m, k, n] = GetParam();
    twig::common::Rng rng(m * 31 + k * 37 + n * 41);
    const Matrix a = randomMatrix(m, k, rng);
    const Matrix b = randomMatrix(m, n, rng);
    Matrix want, got;
    reference::matmulTransposeA(a, b, want);
    matmulTransposeA(a, b, got);
    expectNear(got, want, 1e-3);
}

TEST_P(TiledKernelEquivalence, SparseAMatchesReferenceOnOneHotRows)
{
    const auto [m, k, n] = GetParam();
    twig::common::Rng rng(m + k + n);
    // One-hot rows: the genuinely sparse input the skip branch is for.
    Matrix a(m, k, 0.0f);
    for (std::size_t i = 0; i < m; ++i)
        a(i, rng.uniformInt(k)) = 1.0f;
    const Matrix b = randomMatrix(k, n, rng);
    Matrix want, got;
    reference::matmul(a, b, want);
    matmulSparseA(a, b, got);
    expectNear(got, want, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledKernelEquivalence,
    ::testing::Values(Shape{1, 1, 1},        // degenerate
                      Shape{1, 7, 1},        // single dot product
                      Shape{5, 3, 2},        // below one tile
                      Shape{6, 8, 16},       // exactly one row-tile
                      Shape{7, 11, 17},      // one past the tile edges
                      Shape{64, 1, 64},      // K=1
                      Shape{129, 2, 3},      // tall-skinny
                      Shape{3, 2, 130},      // short-wide
                      Shape{64, 512, 256},   // BDQ trunk shape
                      Shape{37, 61, 43}),    // odd everything
    [](const ::testing::TestParamInfo<Shape> &info) {
        return std::to_string(info.param.m) + "x" +
            std::to_string(info.param.k) + "x" +
            std::to_string(info.param.n);
    });

TEST(FusedKernels, TransposeAAccumAddsIntoOut)
{
    twig::common::Rng rng(99);
    const Matrix a = randomMatrix(13, 9, rng);
    const Matrix b = randomMatrix(13, 21, rng);
    Matrix grad(9, 21, 1.25f); // pre-existing gradient accumulation
    Matrix product;
    reference::matmulTransposeA(a, b, product);
    matmulTransposeAAccum(a, b, grad);
    for (std::size_t i = 0; i < grad.size(); ++i)
        ASSERT_NEAR(grad.raw()[i], 1.25f + product.raw()[i], 1e-3);
}

TEST(FusedKernels, TransposeAAccumRejectsWrongShape)
{
    Matrix a(4, 3), b(4, 5), out(2, 5);
    EXPECT_THROW(matmulTransposeAAccum(a, b, out),
                 twig::common::PanicError);
}

TEST(FusedKernels, MatmulBiasMatchesSeparatePasses)
{
    twig::common::Rng rng(7);
    const Matrix x = randomMatrix(19, 23, rng);
    const Matrix w = randomMatrix(23, 33, rng);
    std::vector<float> bias(33);
    for (auto &v : bias)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    Matrix want;
    reference::matmul(x, w, want);
    for (std::size_t r = 0; r < want.rows(); ++r)
        for (std::size_t c = 0; c < want.cols(); ++c)
            want(r, c) += bias[c];

    Matrix got;
    matmulBias(x, w, bias, got);
    expectNear(got, want, 1e-3);
}

TEST(FusedKernels, MatmulBiasReluClampsAndRecordsMask)
{
    twig::common::Rng rng(11);
    const Matrix x = randomMatrix(18, 10, rng);
    const Matrix w = randomMatrix(10, 27, rng);
    std::vector<float> bias(27);
    for (auto &v : bias)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    Matrix pre;
    matmulBias(x, w, bias, pre);

    Matrix got;
    std::vector<unsigned char> mask;
    matmulBiasRelu(x, w, bias, got, mask);
    ASSERT_EQ(mask.size(), pre.size());
    for (std::size_t i = 0; i < pre.size(); ++i) {
        const float v = pre.raw()[i];
        ASSERT_FLOAT_EQ(got.raw()[i], v > 0.0f ? v : 0.0f);
        ASSERT_EQ(mask[i], v > 0.0f ? 1 : 0);
    }
}
