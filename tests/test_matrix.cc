/** @file Unit tests for the dense matrix primitives. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "nn/matrix.hh"

using namespace twig::nn;

TEST(Matrix, ConstructAndIndex)
{
    Matrix m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
    m(0, 1) = 7.0f;
    EXPECT_FLOAT_EQ(m(0, 1), 7.0f);
}

TEST(Matrix, FillAndScale)
{
    Matrix m(2, 2);
    m.fill(3.0f);
    m.scaleInPlace(0.5f);
    for (std::size_t i = 0; i < m.size(); ++i)
        EXPECT_FLOAT_EQ(m.raw()[i], 1.5f);
}

TEST(Matrix, AddInPlace)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 2.0f);
    a.addInPlace(b);
    EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(a(1, 1), 3.0f);
}

TEST(Matrix, AddShapeMismatchPanics)
{
    Matrix a(2, 2), b(2, 3);
    EXPECT_THROW(a.addInPlace(b), twig::common::PanicError);
}

TEST(Matrix, RowPtrPointsIntoStorage)
{
    Matrix m(3, 4);
    m(2, 1) = 9.0f;
    EXPECT_FLOAT_EQ(m.rowPtr(2)[1], 9.0f);
}

TEST(Matmul, KnownProduct)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    Matrix a(2, 2), b(2, 2), out;
    a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
    b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
    matmul(a, b, out);
    EXPECT_FLOAT_EQ(out(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(out(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(out(1, 1), 50.0f);
}

TEST(Matmul, RectangularShapes)
{
    Matrix a(1, 3, 1.0f), b(3, 2, 2.0f), out;
    matmul(a, b, out);
    EXPECT_EQ(out.rows(), 1u);
    EXPECT_EQ(out.cols(), 2u);
    EXPECT_FLOAT_EQ(out(0, 0), 6.0f);
}

TEST(Matmul, InnerDimensionMismatchPanics)
{
    Matrix a(2, 3), b(2, 2), out;
    EXPECT_THROW(matmul(a, b, out), twig::common::PanicError);
}

TEST(Matmul, TransposeBMatchesExplicit)
{
    // a [2x3] * b^T where b is [4x3].
    Matrix a(2, 3), b(4, 3), expect, bt(3, 4), out;
    float v = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        a.raw()[i] = v += 1.0f;
    for (std::size_t i = 0; i < b.size(); ++i)
        b.raw()[i] = v -= 0.5f;
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            bt(c, r) = b(r, c);
    matmul(a, bt, expect);
    matmulTransposeB(a, b, out);
    ASSERT_EQ(out.rows(), 2u);
    ASSERT_EQ(out.cols(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out.raw()[i], expect.raw()[i], 1e-4);
}

TEST(Matmul, TransposeAMatchesExplicit)
{
    // a^T [3x2] * b [3x4] where a is [3x2].
    Matrix a(3, 2), b(3, 4), at(2, 3), expect, out;
    float v = 1.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        a.raw()[i] = v *= 1.1f;
    for (std::size_t i = 0; i < b.size(); ++i)
        b.raw()[i] = v -= 0.2f;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            at(c, r) = a(r, c);
    matmul(at, b, expect);
    matmulTransposeA(a, b, out);
    ASSERT_EQ(out.rows(), 2u);
    ASSERT_EQ(out.cols(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out.raw()[i], expect.raw()[i], 1e-4);
}

TEST(Matmul, OutputIsOverwrittenNotAccumulated)
{
    Matrix a(1, 1), b(1, 1), out(1, 1, 99.0f);
    a(0, 0) = 2.0f;
    b(0, 0) = 3.0f;
    matmul(a, b, out);
    EXPECT_FLOAT_EQ(out(0, 0), 6.0f);
}
