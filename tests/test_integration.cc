/** @file Integration tests: full Twig-S / Twig-C loops on the
 * simulated server, plus end-to-end determinism. */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/static_manager.hh"
#include "core/twig_manager.hh"
#include "harness/profiling.hh"
#include "harness/runner.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;
using namespace twig::core;
using namespace twig::harness;

namespace {

TwigServiceSpec
quickSpec(const sim::ServiceProfile &p)
{
    // A hand-set Eq. 2 model of roughly the right scale, so the
    // integration tests do not pay for a profiling campaign.
    TwigServiceSpec spec;
    spec.name = p.name;
    spec.qosTargetMs = p.qosTargetMs;
    spec.maxLoadRps = p.maxLoadRps;
    spec.powerModel = ServicePowerModel(11.0, 0.9, 2.3);
    return spec;
}

} // namespace

TEST(Integration, TwigSLearnsToMeetQos)
{
    const sim::MachineConfig machine;
    const auto maxima = services::calibrateCounterMaxima(machine);
    const auto profile = services::masstree();

    sim::Server server(machine, 101);
    server.addService(profile, std::make_unique<sim::FixedLoad>(
                                   profile.maxLoadRps, 0.5));
    TwigManager twig(TwigConfig::fast(900), machine, maxima,
                     {quickSpec(profile)}, 102);
    ExperimentRunner runner(server, twig);

    RunOptions opt;
    opt.steps = 900;
    opt.summaryWindow = 150;
    const auto result = runner.run(opt);
    // After the compressed learning schedule the QoS guarantee must be
    // high and power below the static allocation (~91 W at this load).
    EXPECT_GT(result.metrics.services[0].qosGuaranteePct, 80.0);
    EXPECT_LT(result.metrics.meanPowerW, 100.0);
}

TEST(Integration, TwigCManagesTwoServices)
{
    const sim::MachineConfig machine;
    const auto maxima = services::calibrateCounterMaxima(machine);
    const auto mt = services::masstree();
    const auto xa = services::xapian();

    sim::Server server(machine, 103);
    server.addService(
        mt, std::make_unique<sim::FixedLoad>(mt.maxLoadRps, 0.3));
    server.addService(
        xa, std::make_unique<sim::FixedLoad>(xa.maxLoadRps, 0.3));

    TwigManager twig(TwigConfig::fast(700), machine, maxima,
                     {quickSpec(mt), quickSpec(xa)}, 104);
    ExperimentRunner runner(server, twig);

    RunOptions opt;
    opt.steps = 700;
    opt.summaryWindow = 120;
    const auto result = runner.run(opt);
    ASSERT_EQ(result.metrics.services.size(), 2u);
    EXPECT_GT(result.metrics.avgQosGuaranteePct(), 70.0);
}

TEST(Integration, FullRunIsDeterministic)
{
    const sim::MachineConfig machine;
    const auto maxima = services::calibrateCounterMaxima(machine);
    const auto profile = services::moses();

    auto run_once = [&]() {
        sim::Server server(machine, 105);
        server.addService(profile, std::make_unique<sim::FixedLoad>(
                                       profile.maxLoadRps, 0.4));
        TwigManager twig(TwigConfig::fast(120), machine, maxima,
                         {quickSpec(profile)}, 106);
        ExperimentRunner runner(server, twig);
        RunOptions opt;
        opt.steps = 120;
        opt.summaryWindow = 40;
        return runner.run(opt).metrics;
    };

    const auto a = run_once();
    const auto b = run_once();
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
    EXPECT_DOUBLE_EQ(a.services[0].qosGuaranteePct,
                     b.services[0].qosGuaranteePct);
    EXPECT_DOUBLE_EQ(a.services[0].meanTardiness,
                     b.services[0].meanTardiness);
}

TEST(Integration, TwigBeatsStaticOnEnergyAtLowLoad)
{
    // The headline claim, scaled down: at low load an adaptive manager
    // must burn meaningfully less energy than the static mapping while
    // keeping the QoS guarantee high.
    const sim::MachineConfig machine;
    const auto maxima = services::calibrateCounterMaxima(machine);
    const auto profile = services::imgdnn();

    auto run_with = [&](core::TaskManager &mgr, std::uint64_t seed) {
        sim::Server server(machine, seed);
        server.addService(profile, std::make_unique<sim::FixedLoad>(
                                       profile.maxLoadRps, 0.2));
        ExperimentRunner runner(server, mgr);
        RunOptions opt;
        opt.steps = 1300;
        opt.summaryWindow = 200;
        return runner.run(opt).metrics;
    };

    baselines::StaticManager static_mgr(machine);
    const auto static_result = run_with(static_mgr, 107);

    TwigManager twig(TwigConfig::fast(1300), machine, maxima,
                     {quickSpec(profile)}, 108);
    const auto twig_result = run_with(twig, 107);

    EXPECT_GT(twig_result.services[0].qosGuaranteePct, 75.0);
    // The simulator's savings ceiling vs static at 20% load is ~20%
    // (constant uncore power + idle-core leakage floor); a compressed
    // run reliably captures over half of it.
    EXPECT_LT(twig_result.meanPowerW,
              0.90 * static_result.meanPowerW);
}

TEST(Integration, TransferAdaptsAfterServiceSwap)
{
    const sim::MachineConfig machine;
    const auto maxima = services::calibrateCounterMaxima(machine);
    const auto mt = services::masstree();
    const auto mo = services::moses();

    sim::Server server(machine, 109);
    server.addService(
        mt, std::make_unique<sim::FixedLoad>(mt.maxLoadRps, 0.5));
    TwigManager twig(TwigConfig::fast(600), machine, maxima,
                     {quickSpec(mt)}, 110);
    ExperimentRunner runner(server, twig);
    RunOptions learn;
    learn.steps = 600;
    learn.summaryWindow = 100;
    runner.run(learn);

    // Swap masstree -> moses with transfer learning.
    server.replaceService(
        0, mo, std::make_unique<sim::FixedLoad>(mo.maxLoadRps, 0.5));
    twig.transferService(0, quickSpec(mo), 60);

    RunOptions adapt;
    adapt.steps = 200;
    adapt.summaryWindow = 80;
    const auto result = runner.run(adapt);
    EXPECT_GT(result.metrics.services[0].qosGuaranteePct, 60.0);
}

TEST(Integration, TwigRecoversFromLoadSpike)
{
    // Failure injection: a trained Twig-S hit by a sudden 3x load
    // spike must recover its QoS within a bounded number of intervals
    // (the timeout bounds backlog; the policy must re-provision).
    const sim::MachineConfig machine;
    const auto maxima = services::calibrateCounterMaxima(machine);
    const auto profile = services::masstree();

    // A load generator that spikes from 25% to 75% at a known step.
    class SpikeLoad : public sim::LoadGenerator
    {
      public:
        SpikeLoad(double max, std::size_t at) : max_(max), at_(at) {}
        double
        rps(std::size_t step) const override
        {
            return max_ * (step < at_ ? 0.25 : 0.75);
        }

      private:
        double max_;
        std::size_t at_;
    };

    const std::size_t spike_at = 700;
    sim::Server server(machine, 201);
    server.addService(profile, std::make_unique<SpikeLoad>(
                                   profile.maxLoadRps, spike_at));
    // Learn on a diurnal profile first? Keep it simple: the learning
    // phase runs at the low level, the spike lands post-annealing.
    TwigManager twig(TwigConfig::fast(700), machine, maxima,
                     {quickSpec(profile)}, 202);
    ExperimentRunner runner(server, twig);

    std::size_t recovered_at = 0;
    std::size_t consecutive_ok = 0;
    RunOptions opt;
    opt.steps = 900;
    opt.summaryWindow = 100;
    opt.onStep = [&](std::size_t step,
                     const sim::ServerIntervalStats &stats) {
        if (step < spike_at || recovered_at)
            return;
        if (stats.services[0].p99Ms <= profile.qosTargetMs) {
            if (++consecutive_ok >= 5)
                recovered_at = step;
        } else {
            consecutive_ok = 0;
        }
    };
    runner.run(opt);

    ASSERT_GT(recovered_at, 0u) << "never recovered from the spike";
    EXPECT_LT(recovered_at - spike_at, 120u);
}
