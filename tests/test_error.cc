/** @file Unit tests for the panic()/fatal() error helpers. */

#include <gtest/gtest.h>

#include "common/error.hh"

using namespace twig::common;

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Error, MessagesAreConcatenated)
{
    try {
        fatal("value was ", 42, ", expected ", 7);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value was 42, expected 7");
    }
}

TEST(Error, PanicMessagePrefixed)
{
    try {
        panic("x=", 1.5);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: x=1.5");
    }
}

TEST(Error, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "nope"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Error, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "nope"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Error, FatalIsNotAPanic)
{
    // The two categories must stay distinct so tests can tell user
    // errors from library bugs.
    try {
        fatal("user error");
    } catch (const PanicError &) {
        FAIL() << "FatalError must not be caught as PanicError";
    } catch (const FatalError &) {
        SUCCEED();
    }
}
