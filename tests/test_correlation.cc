/** @file Unit tests for Pearson correlation. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "stats/correlation.hh"

using namespace twig::stats;

TEST(Pearson, PerfectPositive)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ShiftAndScaleInvariant)
{
    const std::vector<double> x = {1, 5, 2, 8, 3};
    std::vector<double> y;
    for (double v : x)
        y.push_back(100.0 - 3.0 * v);
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero)
{
    EXPECT_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
    EXPECT_EQ(pearson({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(Pearson, TooFewPointsGivesZero)
{
    EXPECT_EQ(pearson({1.0}, {2.0}), 0.0);
    EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(Pearson, LengthMismatchThrows)
{
    EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), twig::common::FatalError);
}

TEST(Pearson, IndependentSeriesNearZero)
{
    twig::common::Rng rng(9);
    std::vector<double> x, y;
    for (int i = 0; i < 5000; ++i) {
        x.push_back(rng.normal());
        y.push_back(rng.normal());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(CorrelationMatrix, DiagonalIsOneAndSymmetric)
{
    twig::common::Rng rng(15);
    std::vector<std::vector<double>> cols(3);
    for (int i = 0; i < 200; ++i) {
        const double base = rng.normal();
        cols[0].push_back(base);
        cols[1].push_back(base + 0.1 * rng.normal());
        cols[2].push_back(rng.normal());
    }
    const auto m = correlationMatrix(cols);
    ASSERT_EQ(m.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(m[i][i], 1.0);
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
    }
    EXPECT_GT(m[0][1], 0.9); // strongly related columns
    EXPECT_LT(std::abs(m[0][2]), 0.2);
}

TEST(CorrelationMatrix, BoundedInMinusOneOne)
{
    twig::common::Rng rng(21);
    std::vector<std::vector<double>> cols(4);
    for (int i = 0; i < 100; ++i)
        for (auto &c : cols)
            c.push_back(rng.uniform());
    for (const auto &row : correlationMatrix(cols)) {
        for (double r : row) {
            EXPECT_GE(r, -1.0 - 1e-12);
            EXPECT_LE(r, 1.0 + 1e-12);
        }
    }
}
