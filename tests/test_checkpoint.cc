/** @file Unit tests for the framed binary checkpoints (nn + rl). */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/rng.hh"
#include "nn/checkpoint.hh"
#include "nn/mlp.hh"
#include "rl/bdq_learner.hh"
#include "rl/checkpoint.hh"

using namespace twig;
using twig::common::FatalError;
using twig::common::Rng;

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

nn::MlpConfig
smallMlp()
{
    nn::MlpConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {8, 6};
    cfg.outputDim = 2;
    return cfg;
}

rl::BdqLearnerConfig
smallLearner()
{
    rl::BdqLearnerConfig cfg;
    cfg.net.numAgents = 2;
    cfg.net.stateDimPerAgent = 3;
    cfg.net.trunkHidden = {16, 12};
    cfg.net.agentHeadHidden = 8;
    cfg.net.branchHidden = 8;
    cfg.net.branchActions = {4, 3};
    cfg.net.dropoutRate = 0.0f;
    cfg.minibatch = 8;
    cfg.replay.capacity = 256;
    cfg.epsilonMidStep = 20;
    cfg.epsilonFinalStep = 40;
    cfg.betaAnnealSteps = 40;
    cfg.minReplayBeforeTraining = 8;
    cfg.targetUpdateInterval = 10;
    return cfg;
}

rl::Transition
someTransition(double reward)
{
    rl::Transition t;
    t.state = std::vector<float>(6, 0.4f);
    t.actions = {{1, 2}, {3, 0}};
    t.rewards = {reward, -reward};
    t.nextState = std::vector<float>(6, 0.6f);
    return t;
}

} // namespace

TEST(MlpCheckpoint, RoundTripReproducesOutputs)
{
    const std::string path = tmpPath("mlp_roundtrip.ckpt");
    Rng rng_a(1);
    nn::Mlp a(smallMlp(), rng_a);
    nn::saveMlpCheckpoint(a, path);

    // Differently-seeded initialisation: outputs disagree until the
    // checkpoint is restored, then match bit-for-bit.
    Rng rng_b(2);
    nn::Mlp b(smallMlp(), rng_b);
    const std::vector<float> x = {0.1f, -0.4f, 0.7f, 0.2f};
    EXPECT_NE(a.predictOne(x), b.predictOne(x));
    nn::loadMlpCheckpoint(b, path);
    EXPECT_EQ(a.predictOne(x), b.predictOne(x));
}

TEST(MlpCheckpoint, RejectsArchitectureMismatch)
{
    const std::string path = tmpPath("mlp_shape.ckpt");
    Rng rng(1);
    nn::Mlp a(smallMlp(), rng);
    nn::saveMlpCheckpoint(a, path);

    auto wrong = smallMlp();
    wrong.hidden = {8, 7};
    Rng rng_b(1);
    nn::Mlp b(wrong, rng_b);
    EXPECT_THROW(nn::loadMlpCheckpoint(b, path), FatalError);
}

TEST(MlpCheckpoint, RejectsTruncationAndTrailingGarbage)
{
    const std::string path = tmpPath("mlp_corrupt.ckpt");
    Rng rng(1);
    nn::Mlp a(smallMlp(), rng);
    nn::saveMlpCheckpoint(a, path);
    const std::string good = readFileBytes(path);

    Rng rng_b(2);
    nn::Mlp b(smallMlp(), rng_b);
    writeFileBytes(path, good.substr(0, good.size() - 8));
    EXPECT_THROW(nn::loadMlpCheckpoint(b, path), FatalError);
    writeFileBytes(path, good + "junk");
    EXPECT_THROW(nn::loadMlpCheckpoint(b, path), FatalError);

    std::string bad_magic = good;
    bad_magic[0] = 'X';
    writeFileBytes(path, bad_magic);
    EXPECT_THROW(nn::loadMlpCheckpoint(b, path), FatalError);
}

TEST(MlpCheckpoint, RejectsMissingFile)
{
    Rng rng(1);
    nn::Mlp m(smallMlp(), rng);
    EXPECT_THROW(nn::loadMlpCheckpoint(m, tmpPath("no_such.ckpt")),
                 FatalError);
}

TEST(BdqCheckpoint, RoundTripReproducesPolicy)
{
    const std::string path = tmpPath("bdq_roundtrip.ckpt");
    Rng rng_a(3);
    rl::BdqLearner a(smallLearner(), rng_a);
    // Push the weights away from their initialisation so the
    // round-trip covers a trained network, not just init state.
    for (int i = 0; i < 30; ++i)
        a.observe(someTransition(0.1 * i));
    rl::saveCheckpoint(a, path);

    Rng rng_b(4);
    rl::BdqLearner b(smallLearner(), rng_b);
    rl::loadCheckpoint(b, path);
    for (int i = 0; i < 5; ++i) {
        const std::vector<float> state(6, 0.1f * static_cast<float>(i));
        EXPECT_EQ(a.greedyActions(state), b.greedyActions(state));
    }
}

TEST(BdqCheckpoint, RejectsArchitectureMismatch)
{
    const std::string path = tmpPath("bdq_shape.ckpt");
    Rng rng_a(3);
    rl::BdqLearner a(smallLearner(), rng_a);
    rl::saveCheckpoint(a, path);

    auto wrong = smallLearner();
    wrong.net.branchActions = {4, 2};
    Rng rng_b(3);
    rl::BdqLearner b(wrong, rng_b);
    EXPECT_THROW(rl::loadCheckpoint(b, path), FatalError);
}

TEST(BdqCheckpoint, RejectsWrongNetworkFamily)
{
    // An Mlp checkpoint must not restore into a BDQ learner even if
    // the byte count happened to line up.
    const std::string path = tmpPath("family.ckpt");
    Rng rng_m(1);
    nn::Mlp mlp(smallMlp(), rng_m);
    nn::saveMlpCheckpoint(mlp, path);

    Rng rng_l(1);
    rl::BdqLearner learner(smallLearner(), rng_l);
    try {
        rl::loadCheckpoint(learner, path);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        // The wrong-kind diagnosis names what a BDQ restore expects.
        EXPECT_NE(msg.find("expected kind 2"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
    }
}

TEST(CheckpointErrors, BadMagicReportsPathAndBytes)
{
    const std::string path = tmpPath("bad_magic.ckpt");
    Rng rng(1);
    nn::Mlp a(smallMlp(), rng);
    nn::saveMlpCheckpoint(a, path);
    std::string bytes = readFileBytes(path);
    bytes[0] = 'X'; // "XWIGCKPT"
    writeFileBytes(path, bytes);

    Rng rng_b(2);
    nn::Mlp b(smallMlp(), rng_b);
    try {
        nn::loadMlpCheckpoint(b, path);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        // Expected-vs-actual magic, with the actual bytes in hex
        // ('X' = 0x58) and the expected name spelled out.
        EXPECT_NE(msg.find("TWIGCKPT"), std::string::npos) << msg;
        EXPECT_NE(msg.find("58"), std::string::npos) << msg;
    }
}

TEST(CheckpointErrors, TruncatedMagicIsDiagnosedAsTruncation)
{
    const std::string path = tmpPath("tiny.ckpt");
    writeFileBytes(path, "TWI");
    Rng rng(1);
    nn::Mlp m(smallMlp(), rng);
    try {
        nn::loadMlpCheckpoint(m, path);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    }
}

TEST(BdqCheckpoint, StreamRoundTripMatchesFileRoundTrip)
{
    Rng rng_a(3);
    rl::BdqLearner a(smallLearner(), rng_a);
    for (int i = 0; i < 30; ++i)
        a.observe(someTransition(0.05 * i));

    std::ostringstream out;
    rl::saveCheckpoint(a, out, "stream checkpoint");

    Rng rng_b(9);
    rl::BdqLearner b(smallLearner(), rng_b);
    std::istringstream in(out.str());
    rl::loadCheckpoint(b, in, "stream checkpoint");
    for (int i = 0; i < 5; ++i) {
        const std::vector<float> state(6, 0.2f * static_cast<float>(i));
        EXPECT_EQ(a.greedyActions(state), b.greedyActions(state));
    }
}

TEST(BdqCheckpoint, StreamLoadErrorsCarryTheContext)
{
    Rng rng_a(3);
    rl::BdqLearner a(smallLearner(), rng_a);
    std::ostringstream out;
    rl::saveCheckpoint(a, out, "ctx");
    std::string bytes = out.str();
    bytes.resize(bytes.size() - 12); // chop the parameter tail

    Rng rng_b(3);
    rl::BdqLearner b(smallLearner(), rng_b);
    std::istringstream in(bytes);
    try {
        rl::loadCheckpoint(b, in, "node-1 frame");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("node-1 frame"),
                  std::string::npos)
            << err.what();
    }
}
