/** @file Unit tests for the annealing schedules. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "rl/schedule.hh"

using namespace twig::rl;

TEST(Schedule, ValuesAtKnots)
{
    PiecewiseLinearSchedule s({{0, 1.0}, {100, 0.1}, {200, 0.01}});
    EXPECT_DOUBLE_EQ(s.at(0), 1.0);
    EXPECT_DOUBLE_EQ(s.at(100), 0.1);
    EXPECT_DOUBLE_EQ(s.at(200), 0.01);
}

TEST(Schedule, LinearInterpolationBetweenKnots)
{
    PiecewiseLinearSchedule s({{0, 1.0}, {100, 0.0}});
    EXPECT_DOUBLE_EQ(s.at(50), 0.5);
    EXPECT_DOUBLE_EQ(s.at(25), 0.75);
}

TEST(Schedule, ClampsOutsideRange)
{
    PiecewiseLinearSchedule s({{10, 0.8}, {20, 0.2}});
    EXPECT_DOUBLE_EQ(s.at(0), 0.8);
    EXPECT_DOUBLE_EQ(s.at(5), 0.8);
    EXPECT_DOUBLE_EQ(s.at(1000), 0.2);
}

TEST(Schedule, SingleKnotIsConstant)
{
    PiecewiseLinearSchedule s({{5, 0.3}});
    EXPECT_DOUBLE_EQ(s.at(0), 0.3);
    EXPECT_DOUBLE_EQ(s.at(5), 0.3);
    EXPECT_DOUBLE_EQ(s.at(99), 0.3);
}

TEST(Schedule, NonIncreasingKnotsThrow)
{
    EXPECT_THROW(
        PiecewiseLinearSchedule({{10, 1.0}, {10, 0.5}}),
        twig::common::FatalError);
    EXPECT_THROW(
        PiecewiseLinearSchedule({{10, 1.0}, {5, 0.5}}),
        twig::common::FatalError);
    EXPECT_THROW(PiecewiseLinearSchedule({}), twig::common::FatalError);
}

TEST(Schedule, PaperEpsilonDefaults)
{
    // 1 -> 0.1 over 10000 steps, -> 0.01 by 25000 (paper §IV).
    const auto eps = makeEpsilonSchedule();
    EXPECT_DOUBLE_EQ(eps.at(0), 1.0);
    EXPECT_DOUBLE_EQ(eps.at(10000), 0.1);
    EXPECT_DOUBLE_EQ(eps.at(25000), 0.01);
    EXPECT_DOUBLE_EQ(eps.at(50000), 0.01);
    EXPECT_NEAR(eps.at(5000), 0.55, 1e-12);
}

TEST(Schedule, BetaAnnealsToOne)
{
    const auto beta = makeBetaSchedule(1000);
    EXPECT_DOUBLE_EQ(beta.at(0), 0.4);
    EXPECT_DOUBLE_EQ(beta.at(1000), 1.0);
    EXPECT_DOUBLE_EQ(beta.at(2000), 1.0);
    EXPECT_DOUBLE_EQ(beta.at(500), 0.7);
}

TEST(Schedule, MonotoneDecreasingEpsilon)
{
    const auto eps = makeEpsilonSchedule(100, 200);
    for (std::size_t t = 1; t <= 250; ++t)
        EXPECT_LE(eps.at(t), eps.at(t - 1));
}
