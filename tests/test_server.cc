/** @file Unit tests for the composed server simulator. */

#include <gtest/gtest.h>

#include <memory>

#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig::sim;

namespace {

CoreAssignment
allCores(const MachineConfig &m)
{
    CoreAssignment a;
    for (std::size_t i = 0; i < m.numCores; ++i)
        a.dedicatedCores.push_back(i);
    a.freqGhz = m.dvfs.maxGhz;
    a.sharedFreqGhz = a.freqGhz;
    return a;
}

} // namespace

TEST(Server, RunsOneServiceAndReportsTelemetry)
{
    MachineConfig m;
    Server server(m, 1);
    const auto profile = twig::services::masstree();
    server.addService(profile, std::make_unique<FixedLoad>(
                                   profile.maxLoadRps, 0.5));
    const auto stats = server.runInterval({allCores(m)});
    ASSERT_EQ(stats.services.size(), 1u);
    const auto &s = stats.services[0];
    EXPECT_EQ(s.name, "masstree");
    EXPECT_NEAR(s.offeredRps, 1200.0, 1e-9);
    EXPECT_GT(s.completed, 900u);
    EXPECT_GT(s.p99Ms, 0.0);
    EXPECT_GT(s.pmcs[0], 0.0);
    EXPECT_GT(stats.socketPowerW, 20.0);
    EXPECT_EQ(stats.step, 0u);
    EXPECT_EQ(server.step(), 1u);
}

TEST(Server, EnergyAccumulatesAcrossIntervals)
{
    MachineConfig m;
    Server server(m, 2);
    const auto profile = twig::services::xapian();
    server.addService(profile, std::make_unique<FixedLoad>(
                                   profile.maxLoadRps, 0.2));
    const auto s1 = server.runInterval({allCores(m)});
    const auto s2 = server.runInterval({allCores(m)});
    EXPECT_GT(s2.energyJoules, s1.energyJoules);
    EXPECT_NEAR(s2.energyJoules - s1.energyJoules,
                s2.socketPowerW * m.intervalSeconds, 1e-9);
}

TEST(Server, AssignmentCountMustMatchServices)
{
    MachineConfig m;
    Server server(m, 3);
    server.addService(twig::services::moses(),
                      std::make_unique<FixedLoad>(1000.0, 0.5));
    EXPECT_THROW(server.runInterval({}), twig::common::FatalError);
    EXPECT_THROW(server.runInterval({allCores(m), allCores(m)}),
                 twig::common::FatalError);
}

TEST(Server, RejectsOutOfRangeCoreIds)
{
    MachineConfig m;
    Server server(m, 4);
    server.addService(twig::services::moses(),
                      std::make_unique<FixedLoad>(1000.0, 0.2));
    CoreAssignment bad;
    bad.dedicatedCores = {m.numCores}; // one past the end
    bad.freqGhz = 2.0;
    EXPECT_THROW(server.runInterval({bad}), twig::common::FatalError);
}

TEST(Server, OfferedRpsFollowsLoadGenerator)
{
    MachineConfig m;
    Server server(m, 5);
    server.addService(twig::services::imgdnn(),
                      std::make_unique<RampLoad>(1000.0, 0.0, 1.0, 10));
    EXPECT_DOUBLE_EQ(server.offeredRps(0), 0.0);
    server.runInterval({allCores(m)});
    EXPECT_DOUBLE_EQ(server.offeredRps(0), 100.0);
}

TEST(Server, ColocatedServicesInterfere)
{
    // Masstree colocated with a bandwidth hog must see higher latency
    // than masstree solo with the same core split.
    MachineConfig m;
    const auto mt = twig::services::masstree();
    const auto mo = twig::services::moses();

    CoreAssignment half_a, half_b;
    for (std::size_t i = 0; i < 9; ++i) {
        half_a.dedicatedCores.push_back(i);
        half_b.dedicatedCores.push_back(9 + i);
    }
    half_a.freqGhz = half_a.sharedFreqGhz = 2.0;
    half_b.freqGhz = half_b.sharedFreqGhz = 2.0;

    Server solo(m, 6);
    solo.addService(mt,
                    std::make_unique<FixedLoad>(mt.maxLoadRps, 0.5));
    Server coloc(m, 6);
    coloc.addService(mt,
                     std::make_unique<FixedLoad>(mt.maxLoadRps, 0.5));
    coloc.addService(mo,
                     std::make_unique<FixedLoad>(mo.maxLoadRps, 0.8));

    double p99_solo = 0.0, p99_coloc = 0.0;
    for (int i = 0; i < 8; ++i) {
        p99_solo = solo.runInterval({half_a}).services[0].p99Ms;
        p99_coloc =
            coloc.runInterval({half_a, half_b}).services[0].p99Ms;
    }
    EXPECT_GT(p99_coloc, p99_solo * 1.1);
}

TEST(Server, ReplaceServiceResetsBacklog)
{
    MachineConfig m;
    Server server(m, 7);
    const auto profile = twig::services::masstree();
    server.addService(profile, std::make_unique<FixedLoad>(
                                   profile.maxLoadRps, 0.9));
    // Starve it to build a backlog.
    CoreAssignment one;
    one.dedicatedCores = {0};
    one.freqGhz = one.sharedFreqGhz = 1.2;
    auto stats = server.runInterval({one});
    EXPECT_GT(stats.services[0].queuedAtEnd, 100u);

    server.replaceService(0, twig::services::xapian(),
                          std::make_unique<FixedLoad>(100.0, 0.1));
    stats = server.runInterval({allCores(m)});
    EXPECT_EQ(stats.services[0].name, "xapian");
    EXPECT_LT(stats.services[0].p99Ms, 200.0);
}

TEST(Server, AttributedPowerIsPlausible)
{
    MachineConfig m;
    Server server(m, 8);
    const auto profile = twig::services::moses();
    server.addService(profile, std::make_unique<FixedLoad>(
                                   profile.maxLoadRps, 0.5));
    const auto stats = server.runInterval({allCores(m)});
    EXPECT_GT(stats.services[0].attributedPowerW, 0.0);
    EXPECT_LT(stats.services[0].attributedPowerW, stats.socketPowerW);
}

TEST(Server, DeterministicGivenSeed)
{
    MachineConfig m;
    auto make = [&m]() {
        auto server = std::make_unique<Server>(m, 99);
        const auto p = twig::services::masstree();
        server->addService(
            p, std::make_unique<FixedLoad>(p.maxLoadRps, 0.5));
        return server;
    };
    auto a = make(), b = make();
    for (int i = 0; i < 5; ++i) {
        const auto sa = a->runInterval({allCores(m)});
        const auto sb = b->runInterval({allCores(m)});
        EXPECT_DOUBLE_EQ(sa.services[0].p99Ms, sb.services[0].p99Ms);
        EXPECT_DOUBLE_EQ(sa.socketPowerW, sb.socketPowerW);
        EXPECT_DOUBLE_EQ(sa.services[0].pmcs[0], sb.services[0].pmcs[0]);
    }
}

TEST(Server, ProfileAccessorValidation)
{
    MachineConfig m;
    Server server(m, 10);
    EXPECT_THROW(server.profile(0), twig::common::FatalError);
    EXPECT_THROW(server.offeredRps(0), twig::common::FatalError);
    EXPECT_THROW(server.replaceService(
                     0, twig::services::moses(),
                     std::make_unique<FixedLoad>(1.0, 1.0)),
                 twig::common::FatalError);
}

TEST(Server, SharedPoolSplitsByCoRunnerDemand)
{
    // Two services share the arbitration pool; the lighter one should
    // see most of the pool as usable (work-conserving capacity split)
    // and meet a latency it could never meet at a naive 1/K share.
    MachineConfig m;
    Server server(m, 31);
    const auto mt = twig::services::masstree();
    const auto xa = twig::services::xapian();
    server.addService(mt,
                      std::make_unique<FixedLoad>(mt.maxLoadRps, 0.3));
    server.addService(xa,
                      std::make_unique<FixedLoad>(xa.maxLoadRps, 0.1));

    // Both request everything: the mapper-style outcome is one big
    // shared pool.
    CoreAssignment shared_all;
    for (std::size_t i = 0; i < m.numCores; ++i)
        shared_all.sharedCores.push_back(i);
    shared_all.shareCount = 2;
    shared_all.freqGhz = shared_all.sharedFreqGhz = m.dvfs.maxGhz;

    double p99_mt = 0.0, p99_xa = 0.0, eff_mt = 0.0;
    for (int i = 0; i < 10; ++i) {
        const auto s = server.runInterval({shared_all, shared_all});
        p99_mt = s.services[0].p99Ms;
        p99_xa = s.services[1].p99Ms;
        eff_mt = s.services[0].effectiveCores;
    }
    // Light co-runner: masstree keeps most of the pool...
    EXPECT_GT(eff_mt, 12.0);
    // ...and both meet their targets comfortably.
    EXPECT_LT(p99_mt, mt.qosTargetMs);
    EXPECT_LT(p99_xa, xa.qosTargetMs);
}
