/**
 * @file
 * Targeted tests for stats::WindowedQuantile's incremental
 * maintenance: ring wrap-around, duplicate-heavy data, percentile
 * extremes, mid-stream window resizes, the deep-rank fallback path,
 * and a randomized cross-check against a naive rebuild-every-query
 * model. (tests/test_summary.cc holds the basic behavioural tests;
 * everything here attacks the caching/eviction machinery.)
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "stats/windowed_quantile.hh"

using twig::common::Rng;
using twig::stats::WindowedQuantile;

namespace {

/** Sort-and-interpolate percentile: the semantics WindowedQuantile
 * must reproduce bit-for-bit. */
double
naivePercentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (p <= 0.0)
        return values.front();
    if (p >= 100.0)
        return values.back();
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] + frac * (values[lo + 1] - values[lo]);
}

/** Naive trailing-window model: a deque of per-interval vectors. */
class NaiveWindow
{
  public:
    explicit NaiveWindow(std::size_t window) : window_(window) {}

    void
    beginInterval()
    {
        intervals_.emplace_back();
        while (intervals_.size() > window_)
            intervals_.pop_front();
    }

    void add(double x) { intervals_.back().push_back(x); }

    void
    setWindow(std::size_t window)
    {
        window_ = window;
        while (intervals_.size() > window_)
            intervals_.pop_front();
    }

    double
    percentile(double p) const
    {
        std::vector<double> all;
        for (const auto &iv : intervals_)
            all.insert(all.end(), iv.begin(), iv.end());
        return naivePercentile(std::move(all), p);
    }

    double
    lastIntervalPercentile(double p) const
    {
        return intervals_.empty()
            ? 0.0
            : naivePercentile(intervals_.back(), p);
    }

  private:
    std::size_t window_;
    std::deque<std::vector<double>> intervals_;
};

} // namespace

TEST(WindowedQuantileWrap, RingWrapsManyTimesOverItsLength)
{
    // 3-interval window driven for 20 intervals: the ring wraps ~7
    // times; every query must see exactly the last 3 intervals.
    WindowedQuantile w(3);
    NaiveWindow naive(3);
    for (int i = 0; i < 20; ++i) {
        w.beginInterval();
        naive.beginInterval();
        for (int j = 0; j < 50; ++j) {
            const double x = static_cast<double>((i * 50 + j) % 97);
            w.add(x);
            naive.add(x);
        }
        EXPECT_EQ(w.percentile(99.0), naive.percentile(99.0))
            << "interval " << i;
        EXPECT_EQ(w.percentile(50.0), naive.percentile(50.0))
            << "interval " << i;
        EXPECT_EQ(w.intervals(), std::min<std::size_t>(i + 1, 3));
    }
    EXPECT_EQ(w.count(), 150u);
}

TEST(WindowedQuantileWrap, EmptyIntervalsInsideTheWindow)
{
    WindowedQuantile w(4);
    NaiveWindow naive(4);
    for (int i = 0; i < 12; ++i) {
        w.beginInterval();
        naive.beginInterval();
        if (i % 3 != 1) { // every third interval stays empty
            for (int j = 0; j < 10; ++j) {
                const double x = static_cast<double>(i * 10 + j);
                w.add(x);
                naive.add(x);
            }
        }
        EXPECT_EQ(w.percentile(90.0), naive.percentile(90.0));
        EXPECT_EQ(w.lastIntervalPercentile(99.0),
                  naive.lastIntervalPercentile(99.0));
    }
}

TEST(WindowedQuantileDuplicates, MassivelyDuplicatedValues)
{
    // Only three distinct values: rank selection must still agree
    // with the sort model (ties everywhere, tails full of equals).
    WindowedQuantile w(3);
    NaiveWindow naive(3);
    const double vals[] = {7.5, 7.5, 1.0, 7.5, 3.25};
    for (int i = 0; i < 9; ++i) {
        w.beginInterval();
        naive.beginInterval();
        for (int j = 0; j < 40; ++j) {
            const double x = vals[(i + j) % 5];
            w.add(x);
            naive.add(x);
        }
        for (const double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0})
            EXPECT_EQ(w.percentile(p), naive.percentile(p))
                << "interval " << i << " p" << p;
    }
}

TEST(WindowedQuantileExtremes, P0P50P99P100)
{
    WindowedQuantile w(2);
    w.beginInterval();
    for (int j = 100; j >= 1; --j)
        w.add(static_cast<double>(j));
    // 1..100: p0 = min, p100 = max, p50 interpolates mid-ranks.
    EXPECT_EQ(w.percentile(0.0), 1.0);
    EXPECT_EQ(w.percentile(100.0), 100.0);
    EXPECT_EQ(w.percentile(50.0), 50.5);
    EXPECT_EQ(w.percentile(99.0), naivePercentile(
        []{ std::vector<double> v; for (int j = 1; j <= 100; ++j)
                v.push_back(j); return v; }(), 99.0));
    // Out-of-range p clamps rather than reading out of bounds.
    EXPECT_EQ(w.percentile(-5.0), 1.0);
    EXPECT_EQ(w.percentile(250.0), 100.0);
}

TEST(WindowedQuantileExtremes, LowPercentileFallbackThenIncremental)
{
    // A p99 query first (tail path), then p1 (deeper than any cached
    // tail -> gather/select fallback), then p99 again: the fallback
    // must not corrupt the caches.
    WindowedQuantile w(3);
    NaiveWindow naive(3);
    Rng rng(5);
    for (int i = 0; i < 6; ++i) {
        w.beginInterval();
        naive.beginInterval();
        for (int j = 0; j < 200; ++j) {
            const double x = rng.uniform(0.0, 1000.0);
            w.add(x);
            naive.add(x);
        }
        EXPECT_EQ(w.percentile(99.0), naive.percentile(99.0));
        EXPECT_EQ(w.percentile(1.0), naive.percentile(1.0));
        EXPECT_EQ(w.percentile(99.0), naive.percentile(99.0));
    }
}

TEST(WindowedQuantileResize, ShrinkMidStreamEvictsOldest)
{
    WindowedQuantile w(5);
    NaiveWindow naive(5);
    for (int i = 0; i < 5; ++i) {
        w.beginInterval();
        naive.beginInterval();
        for (int j = 0; j < 30; ++j) {
            const double x = static_cast<double>(i * 1000 + j);
            w.add(x);
            naive.add(x);
        }
    }
    w.setWindow(2);
    naive.setWindow(2);
    EXPECT_EQ(w.window(), 2u);
    EXPECT_EQ(w.intervals(), 2u);
    EXPECT_EQ(w.count(), 60u);
    for (const double p : {0.0, 50.0, 99.0, 100.0})
        EXPECT_EQ(w.percentile(p), naive.percentile(p)) << "p" << p;
    // The evicted intervals must stay gone as the stream continues.
    for (int i = 5; i < 9; ++i) {
        w.beginInterval();
        naive.beginInterval();
        for (int j = 0; j < 30; ++j) {
            const double x = static_cast<double>(i * 1000 + j);
            w.add(x);
            naive.add(x);
        }
        EXPECT_EQ(w.percentile(99.0), naive.percentile(99.0));
    }
}

TEST(WindowedQuantileResize, GrowMidStreamFillsFurther)
{
    WindowedQuantile w(2);
    NaiveWindow naive(2);
    for (int i = 0; i < 4; ++i) {
        w.beginInterval();
        naive.beginInterval();
        for (int j = 0; j < 25; ++j) {
            const double x = static_cast<double>(100 - i * 20 + j);
            w.add(x);
            naive.add(x);
        }
    }
    w.setWindow(4);
    naive.setWindow(4);
    EXPECT_EQ(w.intervals(), 2u); // kept samples are preserved...
    for (int i = 4; i < 10; ++i) { // ...and the window fills to 4
        w.beginInterval();
        naive.beginInterval();
        for (int j = 0; j < 25; ++j) {
            const double x = static_cast<double>(i * 31 % 113 + j);
            w.add(x);
            naive.add(x);
        }
        EXPECT_EQ(w.percentile(95.0), naive.percentile(95.0));
    }
    EXPECT_EQ(w.intervals(), 4u);
    EXPECT_EQ(w.count(), 100u);
}

TEST(WindowedQuantileRandomized, CrossCheckAgainstNaiveModel)
{
    // Fuzz the full surface: random interval sizes (including empty),
    // random queries at random ranks, occasional resizes and clears.
    Rng rng(0x51d0);
    for (int round = 0; round < 5; ++round) {
        const std::size_t window = 1 + rng.uniformInt(std::uint64_t{5});
        WindowedQuantile w(window);
        NaiveWindow naive(window);
        for (int i = 0; i < 30; ++i) {
            w.beginInterval();
            naive.beginInterval();
            const std::size_t n = rng.uniformInt(std::uint64_t{120});
            for (std::size_t j = 0; j < n; ++j) {
                const double x = rng.uniform(0.0, 500.0);
                w.add(x);
                naive.add(x);
            }
            const double p = rng.uniform(0.0, 100.0);
            EXPECT_EQ(w.percentile(p), naive.percentile(p))
                << "round " << round << " interval " << i << " p" << p;
            EXPECT_EQ(w.percentile(99.0), naive.percentile(99.0))
                << "round " << round << " interval " << i;
            if (i == 15) {
                const std::size_t nw =
                    1 + rng.uniformInt(std::uint64_t{5});
                w.setWindow(nw);
                naive.setWindow(nw);
            }
        }
    }
}
