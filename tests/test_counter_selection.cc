/** @file Unit tests for the PMC selection pipeline (Table I). */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hh"
#include "common/rng.hh"
#include "core/counter_selection.hh"

using namespace twig::core;
using twig::common::Rng;

TEST(CounterSelection, LatencyTrackingCounterRanksFirst)
{
    Rng rng(1);
    std::vector<double> latency;
    std::vector<std::vector<double>> cols(3);
    for (int i = 0; i < 400; ++i) {
        const double lat = rng.uniform(1.0, 10.0);
        latency.push_back(lat);
        cols[0].push_back(rng.normal());            // pure noise
        cols[1].push_back(lat + 0.05 * rng.normal()); // tracks latency
        cols[2].push_back(0.5 * rng.normal());      // noise
    }
    const auto sel = selectCounters({"noise-a", "tracker", "noise-b"},
                                    cols, latency, 0.95, 2);
    EXPECT_EQ(sel.ranking.front(), 1u);
    EXPECT_GT(std::abs(sel.latencyCorrelation[1]), 0.95);
    EXPECT_LT(std::abs(sel.latencyCorrelation[0]), 0.2);
    EXPECT_EQ(sel.selected.size(), 2u);
    EXPECT_NE(std::find(sel.selected.begin(), sel.selected.end(), 1u),
              sel.selected.end());
}

TEST(CounterSelection, RedundantCountersShareImportance)
{
    // Two copies of the same signal: both correlate with latency, but
    // PCA needs only one component for them.
    Rng rng(2);
    std::vector<double> latency;
    std::vector<std::vector<double>> cols(2);
    for (int i = 0; i < 300; ++i) {
        const double lat = rng.uniform(0.0, 1.0);
        latency.push_back(lat);
        cols[0].push_back(lat);
        cols[1].push_back(2.0 * lat + 1.0);
    }
    const auto sel =
        selectCounters({"a", "b"}, cols, latency, 0.95, 2);
    EXPECT_EQ(sel.componentsKept, 1u);
    EXPECT_NEAR(sel.importance[0], sel.importance[1], 0.05);
}

TEST(CounterSelection, ComponentsGrowWithIndependentSignals)
{
    Rng rng(3);
    std::vector<double> latency;
    std::vector<std::vector<double>> cols(4);
    for (int i = 0; i < 2000; ++i) {
        latency.push_back(rng.uniform());
        for (auto &c : cols)
            c.push_back(rng.normal());
    }
    const auto sel = selectCounters({"a", "b", "c", "d"}, cols, latency,
                                    0.95, 4);
    EXPECT_GE(sel.componentsKept, 3u);
}

TEST(CounterSelection, SelectedIndicesSortedAndBounded)
{
    Rng rng(4);
    std::vector<double> latency;
    std::vector<std::vector<double>> cols(5);
    for (int i = 0; i < 100; ++i) {
        latency.push_back(rng.uniform());
        for (auto &c : cols)
            c.push_back(rng.uniform());
    }
    const auto sel = selectCounters({"a", "b", "c", "d", "e"}, cols,
                                    latency, 0.95, 3);
    ASSERT_EQ(sel.selected.size(), 3u);
    EXPECT_TRUE(
        std::is_sorted(sel.selected.begin(), sel.selected.end()));
    for (auto idx : sel.selected)
        EXPECT_LT(idx, 5u);
}

TEST(CounterSelection, SelectCountClampedToCandidates)
{
    Rng rng(5);
    std::vector<double> latency;
    std::vector<std::vector<double>> cols(2);
    for (int i = 0; i < 50; ++i) {
        latency.push_back(rng.uniform());
        cols[0].push_back(rng.uniform());
        cols[1].push_back(rng.uniform());
    }
    const auto sel =
        selectCounters({"a", "b"}, cols, latency, 0.95, 11);
    EXPECT_EQ(sel.selected.size(), 2u);
}

TEST(CounterSelection, Validation)
{
    EXPECT_THROW(selectCounters({}, {}, {}), twig::common::FatalError);
    EXPECT_THROW(selectCounters({"a"}, {{1.0, 2.0}, {3.0, 4.0}},
                                {1.0, 2.0}),
                 twig::common::FatalError);
}
