/** @file Unit tests for least squares, k-fold CV and random search. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hh"
#include "common/rng.hh"
#include "stats/regression.hh"

using namespace twig::stats;

TEST(LeastSquares, RecoversExactCoefficients)
{
    // y = 2a - 3b + 0.5c
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    twig::common::Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const double a = rng.uniform(), b = rng.uniform(),
                     c = rng.uniform();
        rows.push_back({a, b, c});
        y.push_back(2.0 * a - 3.0 * b + 0.5 * c);
    }
    const auto w = leastSquares(rows, y);
    ASSERT_EQ(w.size(), 3u);
    EXPECT_NEAR(w[0], 2.0, 1e-9);
    EXPECT_NEAR(w[1], -3.0, 1e-9);
    EXPECT_NEAR(w[2], 0.5, 1e-9);
}

TEST(LeastSquares, MinimisesResidualUnderNoise)
{
    twig::common::Rng rng(2);
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(0.0, 10.0);
        rows.push_back({1.0, x});
        y.push_back(4.0 + 1.5 * x + rng.normal(0.0, 0.1));
    }
    const auto w = leastSquares(rows, y);
    EXPECT_NEAR(w[0], 4.0, 0.05);
    EXPECT_NEAR(w[1], 1.5, 0.01);
}

TEST(LeastSquares, SingularThrows)
{
    // Two identical columns -> singular normal matrix.
    std::vector<std::vector<double>> rows = {
        {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
    EXPECT_THROW(leastSquares(rows, {1.0, 2.0, 3.0}),
                 twig::common::FatalError);
}

TEST(LeastSquares, UnderdeterminedThrows)
{
    EXPECT_THROW(leastSquares({{1.0, 2.0, 3.0}}, {1.0}),
                 twig::common::FatalError);
}

TEST(LeastSquares, InputValidation)
{
    EXPECT_THROW(leastSquares({}, {}), twig::common::FatalError);
    EXPECT_THROW(leastSquares({{1.0}}, {1.0, 2.0}),
                 twig::common::FatalError);
}

TEST(Metrics, MseKnownValue)
{
    EXPECT_DOUBLE_EQ(meanSquaredError({1.0, 2.0}, {0.0, 4.0}), 2.5);
    EXPECT_DOUBLE_EQ(meanSquaredError({3.0}, {3.0}), 0.0);
}

TEST(Metrics, RSquaredPerfectAndBaseline)
{
    EXPECT_DOUBLE_EQ(rSquared({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 1.0);
    // Predicting the mean gives R^2 = 0.
    EXPECT_NEAR(rSquared({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}), 0.0, 1e-12);
}

TEST(Metrics, MapeSkipsZeroTruth)
{
    // Only the second sample counts: |5-4|/4 = 25%.
    EXPECT_DOUBLE_EQ(
        meanAbsolutePercentageError({1.0, 5.0}, {0.0, 4.0}), 25.0);
}

TEST(Kfold, PartitionsAllIndicesExactlyOnce)
{
    twig::common::Rng rng(5);
    const auto folds = kfoldSplit(103, 5, rng);
    ASSERT_EQ(folds.size(), 5u);
    std::set<std::size_t> seen;
    for (const auto &f : folds) {
        // Fold sizes differ by at most one.
        EXPECT_GE(f.size(), 20u);
        EXPECT_LE(f.size(), 21u);
        for (std::size_t i : f) {
            EXPECT_TRUE(seen.insert(i).second) << "duplicate index";
            EXPECT_LT(i, 103u);
        }
    }
    EXPECT_EQ(seen.size(), 103u);
}

TEST(Kfold, KClampedToSampleCount)
{
    twig::common::Rng rng(6);
    const auto folds = kfoldSplit(3, 10, rng);
    EXPECT_EQ(folds.size(), 3u);
}

TEST(Kfold, InvalidInputsThrow)
{
    twig::common::Rng rng(7);
    EXPECT_THROW(kfoldSplit(0, 5, rng), twig::common::FatalError);
    EXPECT_THROW(kfoldSplit(10, 0, rng), twig::common::FatalError);
}

TEST(RandomGridSearch, FindsQuadraticMinimum)
{
    twig::common::Rng rng(8);
    const auto r = randomGridSearch(
        {{-10.0, 10.0}, {-10.0, 10.0}},
        [](const std::vector<double> &p) {
            return (p[0] - 3.0) * (p[0] - 3.0) +
                (p[1] + 2.0) * (p[1] + 2.0);
        },
        20000, rng);
    EXPECT_NEAR(r.bestParams[0], 3.0, 0.3);
    EXPECT_NEAR(r.bestParams[1], -2.0, 0.3);
    EXPECT_LT(r.bestScore, 0.1);
    EXPECT_EQ(r.evaluations, 20000u);
}

TEST(RandomGridSearch, RespectsRanges)
{
    twig::common::Rng rng(9);
    const auto r = randomGridSearch(
        {{5.0, 6.0}},
        [](const std::vector<double> &p) { return p[0]; }, 100, rng);
    EXPECT_GE(r.bestParams[0], 5.0);
    EXPECT_LT(r.bestParams[0], 6.0);
}

TEST(RandomGridSearch, InvalidInputsThrow)
{
    twig::common::Rng rng(10);
    const auto noop = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(randomGridSearch({}, noop, 10, rng),
                 twig::common::FatalError);
    EXPECT_THROW(randomGridSearch({{0.0, 1.0}}, noop, 0, rng),
                 twig::common::FatalError);
}
