/** @file Unit tests for the CSV writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"

using twig::common::CsvWriter;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

} // namespace

TEST(Csv, WritesHeaderAndRows)
{
    const std::string path = tmpPath("basic.csv");
    {
        CsvWriter csv(path);
        csv.header({"a", "b", "c"});
        csv.row(1, 2.5, "x");
        csv.row(3, 4.0, "y");
    }
    EXPECT_EQ(slurp(path), "a,b,c\n1,2.5,x\n3,4,y\n");
}

TEST(Csv, RowVecWritesDoubles)
{
    const std::string path = tmpPath("vec.csv");
    {
        CsvWriter csv(path);
        csv.rowVec({1.0, 2.0, 3.5});
    }
    EXPECT_EQ(slurp(path), "1,2,3.5\n");
}

TEST(Csv, EmptyFileWhenNothingWritten)
{
    const std::string path = tmpPath("empty.csv");
    {
        CsvWriter csv(path);
    }
    EXPECT_EQ(slurp(path), "");
}

TEST(Csv, UnwritableDirectoryThrows)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
                 twig::common::FatalError);
}

TEST(Csv, SingleCellRow)
{
    const std::string path = tmpPath("one.csv");
    {
        CsvWriter csv(path);
        csv.row(42);
    }
    EXPECT_EQ(slurp(path), "42\n");
}
