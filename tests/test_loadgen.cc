/** @file Unit tests for the load generators. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>

#include "common/error.hh"
#include "sim/loadgen.hh"

using namespace twig::sim;

TEST(FixedLoad, ConstantAtFraction)
{
    FixedLoad load(1000.0, 0.5);
    EXPECT_DOUBLE_EQ(load.rps(0), 500.0);
    EXPECT_DOUBLE_EQ(load.rps(99999), 500.0);
}

TEST(RampLoad, Endpoints)
{
    RampLoad load(1000.0, 0.2, 1.0, 100);
    EXPECT_DOUBLE_EQ(load.rps(0), 200.0);
    EXPECT_NEAR(load.rps(50), 600.0, 1e-9);
    EXPECT_DOUBLE_EQ(load.rps(100), 1000.0);
    EXPECT_DOUBLE_EQ(load.rps(500), 1000.0); // holds after the ramp
}

TEST(RampLoad, CanRampDown)
{
    RampLoad load(1000.0, 1.0, 0.2, 10);
    EXPECT_DOUBLE_EQ(load.rps(0), 1000.0);
    EXPECT_GT(load.rps(3), load.rps(7));
    EXPECT_DOUBLE_EQ(load.rps(10), 200.0);
}

TEST(StepwiseMonotonic, StartsAtMinimum)
{
    StepwiseMonotonicLoad load(1000.0, 0.2, 0.2, 10);
    EXPECT_DOUBLE_EQ(load.rps(0), 200.0);
    EXPECT_DOUBLE_EQ(load.rps(9), 200.0); // constant within a period
}

TEST(StepwiseMonotonic, MultipliesByChangeFactorEachPeriod)
{
    StepwiseMonotonicLoad load(1000.0, 0.2, 0.2, 10);
    EXPECT_NEAR(load.rps(10), 240.0, 1e-9);
    EXPECT_NEAR(load.rps(20), 288.0, 1e-9);
}

TEST(StepwiseMonotonic, RisesToMaxThenReturns)
{
    StepwiseMonotonicLoad load(1000.0, 0.2, 0.2, 1);
    // 0.2 * 1.2^8 = 0.859, one more step would exceed 1? 1.03 > 1, so
    // 8 upward levels; peak at step 8.
    double peak = 0.0;
    for (std::size_t s = 0; s < 20; ++s)
        peak = std::max(peak, load.rps(s));
    EXPECT_NEAR(peak, 1000.0 * 0.2 * std::pow(1.2, 8), 1.0);
    // The cycle returns to the minimum at step 16.
    EXPECT_NEAR(load.rps(16), 200.0, 1e-9);
}

TEST(StepwiseMonotonic, AverageConstantAcrossCycle)
{
    // The paper: "the average load for the service is constant across
    // two load changes" — the profile is symmetric up/down.
    StepwiseMonotonicLoad load(1000.0, 0.25, 0.25, 1);
    // up levels: 0.25 -> 1.0 is log(4)/log(1.25) ~ 6.2 -> 6 levels.
    for (std::size_t s = 0; s < 6; ++s)
        EXPECT_NEAR(load.rps(s), load.rps(12 - s), 1e-9);
}

TEST(StepwiseMonotonic, NeverExceedsMax)
{
    StepwiseMonotonicLoad load(1000.0, 0.3, 0.5, 2);
    for (std::size_t s = 0; s < 100; ++s) {
        EXPECT_LE(load.rps(s), 1000.0 + 1e-9);
        EXPECT_GE(load.rps(s), 300.0 - 1e-9);
    }
}

TEST(StepwiseMonotonic, Validation)
{
    EXPECT_THROW(StepwiseMonotonicLoad(1000, 0.0, 0.2, 10),
                 twig::common::FatalError);
    EXPECT_THROW(StepwiseMonotonicLoad(1000, 1.5, 0.2, 10),
                 twig::common::FatalError);
    EXPECT_THROW(StepwiseMonotonicLoad(1000, 0.2, 0.0, 10),
                 twig::common::FatalError);
    EXPECT_THROW(StepwiseMonotonicLoad(1000, 0.2, 0.2, 0),
                 twig::common::FatalError);
}

TEST(DiurnalLoad, OscillatesBetweenBounds)
{
    DiurnalLoad load(1000.0, 0.2, 0.8, 100);
    double lo = 1e18, hi = 0.0;
    for (std::size_t s = 0; s < 100; ++s) {
        const double r = load.rps(s);
        lo = std::min(lo, r);
        hi = std::max(hi, r);
        EXPECT_GE(r, 200.0 - 1e-9);
        EXPECT_LE(r, 800.0 + 1e-9);
    }
    EXPECT_NEAR(lo, 200.0, 1.0);
    EXPECT_NEAR(hi, 800.0, 1.0);
}

TEST(DiurnalLoad, PeriodRepeats)
{
    DiurnalLoad load(1000.0, 0.1, 0.9, 50);
    for (std::size_t s = 0; s < 50; ++s)
        EXPECT_DOUBLE_EQ(load.rps(s), load.rps(s + 50));
}

TEST(DiurnalLoad, StartsAtTrough)
{
    DiurnalLoad load(1000.0, 0.2, 0.8, 100);
    EXPECT_NEAR(load.rps(0), 200.0, 1e-9);
    EXPECT_NEAR(load.rps(50), 800.0, 1e-9);
}

TEST(DiurnalLoad, Validation)
{
    EXPECT_THROW(DiurnalLoad(1000, 0.2, 0.8, 0),
                 twig::common::FatalError);
    EXPECT_THROW(DiurnalLoad(1000, 0.9, 0.2, 10),
                 twig::common::FatalError);
}

namespace {

std::string
writeTempCsv(const std::string &name, const std::string &content)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path, std::ios::trunc);
    out << content;
    return path;
}

} // namespace

TEST(ReadCsvColumn, ReadsNamedColumn)
{
    const auto path = writeTempCsv("trace.csv",
                                   "step,rps\n0,10\n1,30\n2,20\n");
    const auto values = readCsvColumn(path, "rps");
    ASSERT_EQ(values.size(), 3u);
    EXPECT_DOUBLE_EQ(values[0], 10.0);
    EXPECT_DOUBLE_EQ(values[1], 30.0);
    EXPECT_DOUBLE_EQ(values[2], 20.0);
}

TEST(ReadCsvColumn, Validation)
{
    const auto path =
        writeTempCsv("bad.csv", "step,rps\n0,10\n1,oops\n");
    EXPECT_THROW(readCsvColumn(path, "rps"), twig::common::FatalError);
    EXPECT_THROW(readCsvColumn(path, "nope"), twig::common::FatalError);
    EXPECT_THROW(readCsvColumn("/no/such/file.csv", "rps"),
                 twig::common::FatalError);
    const auto empty = writeTempCsv("empty.csv", "");
    EXPECT_THROW(readCsvColumn(empty, "rps"), twig::common::FatalError);
}

TEST(TraceLoad, NormalisesMinMaxToFractions)
{
    // Trace min maps to the low fraction, max to the high one, other
    // points linearly in between.
    TraceLoad load(1000.0, {1.0, 3.0, 2.0}, 0.2, 0.8);
    EXPECT_NEAR(load.rps(0), 200.0, 1e-9);
    EXPECT_NEAR(load.rps(1), 800.0, 1e-9);
    EXPECT_NEAR(load.rps(2), 500.0, 1e-9);
}

TEST(TraceLoad, LoopsAndInterpolates)
{
    TraceLoad cyclic(1000.0, {1.0, 3.0, 2.0}, 0.2, 0.8);
    for (std::size_t s = 0; s < 9; ++s)
        EXPECT_DOUBLE_EQ(cyclic.rps(s), cyclic.rps(s + 3));

    // Stretched over twice as many steps as trace points: odd steps
    // land midway between two points.
    TraceLoad stretched(1000.0, {1.0, 3.0, 2.0}, 0.2, 0.8, 6);
    EXPECT_EQ(stretched.periodSteps(), 6u);
    EXPECT_NEAR(stretched.rps(0), 200.0, 1e-9);
    EXPECT_NEAR(stretched.rps(1), 500.0, 1e-9); // between 0.2 and 0.8
    EXPECT_NEAR(stretched.rps(2), 800.0, 1e-9);
}

TEST(TraceLoad, PlaybackIsDeterministic)
{
    const auto path = writeTempCsv(
        "diurnal.csv", "x,density\n0,0.1\n1,0.9\n2,0.5\n3,0.2\n");
    const auto a = TraceLoad::fromCsv(500.0, path, "density", 0.1,
                                      0.7, 40);
    const auto b = TraceLoad::fromCsv(500.0, path, "density", 0.1,
                                      0.7, 40);
    for (std::size_t s = 0; s < 100; ++s)
        EXPECT_DOUBLE_EQ(a->rps(s), b->rps(s));
}

TEST(TraceLoad, Validation)
{
    EXPECT_THROW(TraceLoad(1000.0, {1.0}, 0.2, 0.8),
                 twig::common::FatalError);
    EXPECT_THROW(TraceLoad(1000.0, {1.0, 2.0}, 0.8, 0.2),
                 twig::common::FatalError);
    EXPECT_THROW(TraceLoad(1000.0, {1.0, 2.0}, -0.1, 0.8),
                 twig::common::FatalError);
    EXPECT_THROW(TraceLoad(1000.0, {1.0, 2.0}, 0.2, 1.1),
                 twig::common::FatalError);
}
