/** @file Unit tests for the shared-resource interference model. */

#include <gtest/gtest.h>

#include "sim/interference.hh"

using namespace twig::sim;

namespace {

ServiceProfile
light()
{
    ServiceProfile p;
    p.name = "light";
    p.memTrafficPerReqMB = 0.1;
    p.llcFootprintMB = 2.0;
    p.bwSensitivity = 1.0;
    p.llcSensitivity = 0.5;
    return p;
}

ServiceProfile
heavy()
{
    ServiceProfile p;
    p.name = "heavy";
    p.memTrafficPerReqMB = 20.0;
    p.llcFootprintMB = 40.0;
    p.bwSensitivity = 0.5;
    p.llcSensitivity = 0.5;
    return p;
}

} // namespace

TEST(Interference, SoloLightServiceUnaffected)
{
    MachineConfig m;
    InterferenceModel model(m);
    const auto p = light();
    const auto effects = model.evaluate({{&p, 500.0}});
    ASSERT_EQ(effects.size(), 1u);
    EXPECT_NEAR(effects[0].serviceTimeInflation, 1.0, 0.01);
    EXPECT_NEAR(effects[0].llcMissFactor, 1.0, 0.01);
    EXPECT_NEAR(effects[0].memStallFraction, 0.0, 0.01);
}

TEST(Interference, BandwidthHogInflatesVictim)
{
    MachineConfig m;
    m.memBandwidthMBs = 40000.0;
    InterferenceModel model(m);
    const auto victim = light();
    const auto hog = heavy();
    // Hog demands 2000 * 20 MB = 40 GB/s = full bus.
    const auto effects =
        model.evaluate({{&victim, 500.0}, {&hog, 2000.0}});
    EXPECT_GT(effects[0].serviceTimeInflation, 1.2);
    // The victim's inflation scales with its (higher) sensitivity.
    EXPECT_GT(effects[0].serviceTimeInflation - 1.0,
              (effects[1].serviceTimeInflation - 1.0) * 1.5);
}

TEST(Interference, InflationMonotoneInLoad)
{
    MachineConfig m;
    InterferenceModel model(m);
    const auto a = light();
    const auto b = heavy();
    double prev = 0.0;
    for (double rps : {500.0, 1000.0, 2000.0, 3000.0}) {
        const auto effects = model.evaluate({{&a, 500.0}, {&b, rps}});
        EXPECT_GE(effects[0].serviceTimeInflation, prev);
        prev = effects[0].serviceTimeInflation;
    }
}

TEST(Interference, LlcOvercommitRaisesMissFactor)
{
    MachineConfig m;
    m.llcSizeMB = 45.0;
    InterferenceModel model(m);
    const auto a = heavy(); // 40 MB
    const auto b = heavy(); // 40 MB -> 80 MB on a 45 MB LLC
    const auto effects = model.evaluate({{&a, 100.0}, {&b, 100.0}});
    EXPECT_GT(effects[0].llcMissFactor, 1.3);
}

TEST(Interference, LlcUndercommitNoPenalty)
{
    MachineConfig m;
    m.llcSizeMB = 100.0;
    InterferenceModel model(m);
    const auto a = light();
    const auto b = light();
    const auto effects = model.evaluate({{&a, 100.0}, {&b, 100.0}});
    EXPECT_DOUBLE_EQ(effects[0].llcMissFactor, 1.0);
}

TEST(Interference, StallFractionConsistentWithInflation)
{
    MachineConfig m;
    m.memBandwidthMBs = 20000.0;
    InterferenceModel model(m);
    const auto a = light();
    const auto b = heavy();
    const auto effects = model.evaluate({{&a, 2000.0}, {&b, 1500.0}});
    for (const auto &e : effects) {
        EXPECT_NEAR(e.memStallFraction,
                    (e.serviceTimeInflation - 1.0) /
                        e.serviceTimeInflation,
                    1e-12);
        EXPECT_GE(e.memStallFraction, 0.0);
        EXPECT_LT(e.memStallFraction, 1.0);
    }
}

TEST(Interference, EmptyDemandListIsFine)
{
    MachineConfig m;
    InterferenceModel model(m);
    EXPECT_TRUE(model.evaluate({}).empty());
}

TEST(Interference, BiggerFootprintSuffersMoreFromOvercommit)
{
    MachineConfig m;
    m.llcSizeMB = 45.0;
    InterferenceModel model(m);
    auto big = heavy();   // 40 MB
    auto small = light(); // 2 MB
    small.llcSensitivity = big.llcSensitivity;
    auto filler = heavy(); // force overcommit
    const auto effects = model.evaluate(
        {{&big, 100.0}, {&small, 100.0}, {&filler, 100.0}});
    EXPECT_GT(effects[0].llcMissFactor, effects[1].llcMissFactor);
}
