/** @file Unit tests for the BDQ learner (Algorithm 1 driver). */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "rl/bdq_learner.hh"

using namespace twig::rl;
using twig::common::Rng;

namespace {

BdqLearnerConfig
smallLearner(std::size_t agents = 1)
{
    BdqLearnerConfig cfg;
    cfg.net.numAgents = agents;
    cfg.net.stateDimPerAgent = 3;
    cfg.net.trunkHidden = {24, 16};
    cfg.net.agentHeadHidden = 12;
    cfg.net.branchHidden = 12;
    cfg.net.branchActions = {4, 3};
    cfg.net.dropoutRate = 0.0f;
    cfg.net.adam.learningRate = 0.005f;
    cfg.minibatch = 16;
    cfg.replay.capacity = 2048;
    cfg.epsilonMidStep = 200;
    cfg.epsilonFinalStep = 400;
    cfg.betaAnnealSteps = 400;
    cfg.minReplayBeforeTraining = 16;
    cfg.targetUpdateInterval = 50;
    return cfg;
}

Transition
banditTransition(const std::vector<std::size_t> &a, double reward)
{
    Transition t;
    t.state = {0.5f, 0.5f, 0.5f};
    t.actions = {a};
    t.rewards = {reward};
    t.nextState = {0.5f, 0.5f, 0.5f};
    return t;
}

} // namespace

TEST(BdqLearner, EpsilonFollowsSchedule)
{
    Rng rng(1);
    BdqLearner learner(smallLearner(), rng);
    EXPECT_DOUBLE_EQ(learner.epsilon(), 1.0);
    for (int i = 0; i < 200; ++i) {
        learner.observe(banditTransition({0, 0}, 0.0));
    }
    EXPECT_NEAR(learner.epsilon(), 0.1, 1e-9);
    EXPECT_EQ(learner.step(), 200u);
}

TEST(BdqLearner, SelectActionsWithinBounds)
{
    Rng rng(2);
    BdqLearner learner(smallLearner(2), rng);
    std::vector<float> state(6, 0.2f);
    for (int i = 0; i < 50; ++i) {
        const auto actions = learner.selectActions(state);
        ASSERT_EQ(actions.size(), 2u);
        for (const auto &a : actions) {
            ASSERT_EQ(a.size(), 2u);
            EXPECT_LT(a[0], 4u);
            EXPECT_LT(a[1], 3u);
        }
    }
}

TEST(BdqLearner, TrainingStartsAfterMinReplay)
{
    Rng rng(3);
    auto cfg = smallLearner();
    cfg.minReplayBeforeTraining = 10;
    BdqLearner learner(cfg, rng);
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(learner.observe(banditTransition({0, 0}, 0.0)));
    EXPECT_TRUE(learner.observe(banditTransition({0, 0}, 0.0)));
}

TEST(BdqLearner, TrainEveryGatesGradientSteps)
{
    Rng rng(4);
    auto cfg = smallLearner();
    cfg.minReplayBeforeTraining = 1;
    cfg.trainEvery = 3;
    BdqLearner learner(cfg, rng);
    int trained = 0;
    for (int i = 0; i < 12; ++i)
        trained += learner.observe(banditTransition({0, 0}, 0.0))
            ? 1 : 0;
    EXPECT_EQ(trained, 4);
}

TEST(BdqLearner, LearnsBanditOptimum)
{
    // Contextual bandit: reward depends only on the chosen actions;
    // best combo is (branch0 = 2, branch1 = 1).
    Rng rng(5);
    auto cfg = smallLearner();
    cfg.epsilonMidStep = 300;
    cfg.epsilonFinalStep = 600;
    cfg.epsilonFinal = 0.05;
    BdqLearner learner(cfg, rng);

    const std::vector<float> state = {0.5f, 0.5f, 0.5f};
    for (int i = 0; i < 900; ++i) {
        const auto actions = learner.selectActions(state);
        const double r =
            (actions[0][0] == 2 ? 1.0 : 0.0) +
            (actions[0][1] == 1 ? 1.0 : 0.0);
        learner.observe(banditTransition(actions[0], r));
    }
    const auto greedy = learner.greedyActions(state);
    EXPECT_EQ(greedy[0][0], 2u);
    EXPECT_EQ(greedy[0][1], 1u);
}

TEST(BdqLearner, TrainStatsAreFinite)
{
    Rng rng(6);
    BdqLearner learner(smallLearner(), rng);
    for (int i = 0; i < 32; ++i)
        learner.observe(banditTransition({1, 1}, 0.5));
    const auto stats = learner.trainStep();
    EXPECT_TRUE(std::isfinite(stats.loss));
    EXPECT_TRUE(std::isfinite(stats.meanAbsTdError));
    EXPECT_GE(stats.meanAbsTdError, 0.0);
}

TEST(BdqLearner, TransferResetsEpsilonWindow)
{
    Rng rng(7);
    BdqLearner learner(smallLearner(), rng);
    for (int i = 0; i < 500; ++i)
        learner.observe(banditTransition({0, 0}, 0.0));
    const double eps_before = learner.epsilon();
    EXPECT_LT(eps_before, 0.1);
    learner.beginTransfer(50, 0.3);
    EXPECT_NEAR(learner.epsilon(), 0.3, 1e-9);
    for (int i = 0; i < 50; ++i)
        learner.observe(banditTransition({0, 0}, 0.0));
    EXPECT_NEAR(learner.epsilon(), learner.config().epsilonFinal, 1e-9);
}

TEST(BdqLearner, RejectsMalformedTransitions)
{
    Rng rng(8);
    BdqLearner learner(smallLearner(), rng);
    Transition bad;
    bad.state = {0.1f};          // wrong width
    bad.actions = {{0, 0}};
    bad.rewards = {0.0};
    bad.nextState = {0.1f, 0.1f, 0.1f};
    EXPECT_THROW(learner.observe(bad), twig::common::FatalError);

    Transition bad2 = banditTransition({0, 0}, 0.0);
    bad2.rewards = {0.0, 1.0}; // wrong agent count
    EXPECT_THROW(learner.observe(bad2), twig::common::FatalError);
}

TEST(BdqLearner, InvalidConfigThrows)
{
    Rng rng(9);
    auto cfg = smallLearner();
    cfg.minibatch = 0;
    EXPECT_THROW(BdqLearner(cfg, rng), twig::common::FatalError);
    cfg = smallLearner();
    cfg.discount = 1.0;
    EXPECT_THROW(BdqLearner(cfg, rng), twig::common::FatalError);
}

TEST(BdqLearner, DoneFlagSkipsBootstrap)
{
    // With gamma near 1 and huge next-state Q values this would blow up
    // if done were ignored; just exercise the code path for coverage
    // and sanity.
    Rng rng(10);
    BdqLearner learner(smallLearner(), rng);
    for (int i = 0; i < 40; ++i) {
        auto t = banditTransition({0, 0}, 1.0);
        t.done = true;
        learner.observe(std::move(t));
    }
    const auto stats = learner.trainStep();
    EXPECT_TRUE(std::isfinite(stats.loss));
}
