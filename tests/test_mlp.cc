/** @file Unit tests for the MLP regressor. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"
#include "nn/mlp.hh"

using namespace twig::nn;
using twig::common::Rng;

TEST(Mlp, FitsLinearFunction)
{
    Rng rng(1);
    MlpConfig cfg;
    cfg.inputDim = 1;
    cfg.hidden = {16};
    cfg.outputDim = 1;
    cfg.adam.learningRate = 0.01f;
    Mlp mlp(cfg, rng);

    Matrix x(32, 1), t(32, 1);
    float last = 1e30f;
    for (int epoch = 0; epoch < 400; ++epoch) {
        for (std::size_t i = 0; i < 32; ++i) {
            const float xi = static_cast<float>(rng.uniform(-1.0, 1.0));
            x(i, 0) = xi;
            t(i, 0) = 2.0f * xi + 1.0f;
        }
        last = mlp.trainStep(x, t);
    }
    EXPECT_LT(last, 0.01f);
    const auto y = mlp.predictOne({0.5f});
    EXPECT_NEAR(y[0], 2.0f, 0.3f);
}

TEST(Mlp, FitsNonlinearFunction)
{
    Rng rng(2);
    MlpConfig cfg;
    cfg.inputDim = 2;
    cfg.hidden = {32, 16};
    cfg.outputDim = 1;
    cfg.adam.learningRate = 0.005f;
    Mlp mlp(cfg, rng);

    // XOR-like target: sign(x0) * sign(x1).
    Matrix x(64, 2), t(64, 1);
    float loss = 1e30f;
    for (int epoch = 0; epoch < 1500; ++epoch) {
        for (std::size_t i = 0; i < 64; ++i) {
            const float a = static_cast<float>(rng.uniform(-1.0, 1.0));
            const float b = static_cast<float>(rng.uniform(-1.0, 1.0));
            x(i, 0) = a;
            x(i, 1) = b;
            t(i, 0) = (a > 0) == (b > 0) ? 1.0f : -1.0f;
        }
        loss = mlp.trainStep(x, t);
    }
    EXPECT_LT(loss, 0.15f);
    EXPECT_GT(mlp.predictOne({0.8f, 0.8f})[0], 0.4f);
    EXPECT_LT(mlp.predictOne({0.8f, -0.8f})[0], -0.4f);
}

TEST(Mlp, PredictIsDeterministic)
{
    Rng rng(3);
    MlpConfig cfg;
    cfg.inputDim = 3;
    cfg.hidden = {8};
    cfg.outputDim = 2;
    cfg.dropoutRate = 0.5f; // must not fire in eval mode
    Mlp mlp(cfg, rng);
    const auto y1 = mlp.predictOne({0.1f, 0.2f, 0.3f});
    const auto y2 = mlp.predictOne({0.1f, 0.2f, 0.3f});
    ASSERT_EQ(y1.size(), 2u);
    EXPECT_FLOAT_EQ(y1[0], y2[0]);
    EXPECT_FLOAT_EQ(y1[1], y2[1]);
}

TEST(Mlp, ParamCountMatchesArchitecture)
{
    Rng rng(4);
    MlpConfig cfg;
    cfg.inputDim = 5;
    cfg.hidden = {7, 3};
    cfg.outputDim = 2;
    Mlp mlp(cfg, rng);
    // (5*7+7) + (7*3+3) + (3*2+2) = 42 + 24 + 8 = 74
    EXPECT_EQ(mlp.paramCount(), 74u);
}

TEST(Mlp, NoHiddenLayersIsLinearModel)
{
    Rng rng(5);
    MlpConfig cfg;
    cfg.inputDim = 1;
    cfg.hidden = {};
    cfg.outputDim = 1;
    cfg.adam.learningRate = 0.05f;
    Mlp mlp(cfg, rng);
    Matrix x(16, 1), t(16, 1);
    float loss = 1e30f;
    for (int epoch = 0; epoch < 300; ++epoch) {
        for (std::size_t i = 0; i < 16; ++i) {
            const float xi = static_cast<float>(rng.uniform(-1.0, 1.0));
            x(i, 0) = xi;
            t(i, 0) = -3.0f * xi + 0.5f;
        }
        loss = mlp.trainStep(x, t);
    }
    EXPECT_LT(loss, 1e-3f);
}

TEST(Mlp, InputValidation)
{
    Rng rng(6);
    MlpConfig cfg;
    cfg.inputDim = 0;
    EXPECT_THROW(Mlp(cfg, rng), twig::common::FatalError);

    MlpConfig ok;
    ok.inputDim = 2;
    Mlp mlp(ok, rng);
    EXPECT_THROW(mlp.predictOne({1.0f}), twig::common::FatalError);

    Matrix x(2, 2), t(3, 1);
    EXPECT_THROW(mlp.trainStep(x, t), twig::common::FatalError);
}
