/** @file Unit tests for the Eq. 2 per-service power model. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/power_model.hh"
#include "harness/profiling.hh"
#include "services/tailbench.hh"

using namespace twig::core;
using twig::common::Rng;

namespace {

/** Synthetic samples from an exact Eq. 2 model. */
std::vector<PowerSample>
syntheticSamples(double kappa, double sigma, double omega, Rng &rng,
                 double noise = 0.0)
{
    std::vector<PowerSample> samples;
    for (double load : {0.2, 0.5, 0.8}) {
        for (double cores : {2.0, 6.0, 10.0, 14.0, 18.0}) {
            for (double ghz : {1.2, 1.4, 1.6, 1.8, 2.0}) {
                const double p = kappa * load + sigma * cores +
                    omega * omega * ghz + rng.normal(0.0, noise);
                samples.push_back({load, cores, ghz, p});
            }
        }
    }
    return samples;
}

} // namespace

TEST(PowerModel, PredictFormula)
{
    ServicePowerModel m(10.0, 2.0, 3.0);
    EXPECT_DOUBLE_EQ(m.predict(0.5, 4.0, 1.5), 5.0 + 8.0 + 13.5);
    EXPECT_DOUBLE_EQ(m.kappa(), 10.0);
    EXPECT_DOUBLE_EQ(m.sigma(), 2.0);
    EXPECT_DOUBLE_EQ(m.omega(), 3.0);
}

TEST(PowerModel, ClosedFormRecoversExactCoefficients)
{
    Rng rng(1);
    const auto samples = syntheticSamples(12.0, 1.5, 2.5, rng);
    ServicePowerModel m;
    const auto report = m.fitClosedForm(samples);
    EXPECT_NEAR(m.kappa(), 12.0, 1e-6);
    EXPECT_NEAR(m.sigma(), 1.5, 1e-6);
    EXPECT_NEAR(m.omega(), 2.5, 1e-6);
    EXPECT_LT(report.trainMse, 1e-10);
    EXPECT_NEAR(report.rSquared, 1.0, 1e-9);
}

TEST(PowerModel, RandomSearchApproachesClosedForm)
{
    Rng rng(2);
    const auto samples = syntheticSamples(12.0, 1.5, 2.5, rng, 0.3);

    ServicePowerModel exact;
    const auto exact_report = exact.fitClosedForm(samples);

    ServicePowerModel searched;
    Rng search_rng(3);
    const auto report = searched.fit(samples, search_rng, 8000);

    // Paper-faithful random search lands near the least-squares fit.
    EXPECT_LT(report.trainMse, 4.0 * exact_report.trainMse + 1.0);
    EXPECT_NEAR(searched.kappa(), exact.kappa(), 4.0);
    EXPECT_NEAR(searched.sigma(), exact.sigma(), 1.0);
}

TEST(PowerModel, FitRejectsTooFewSamples)
{
    ServicePowerModel m;
    Rng rng(4);
    std::vector<PowerSample> two = {{0.2, 2, 1.2, 5.0},
                                    {0.5, 4, 1.6, 9.0}};
    EXPECT_THROW(m.fit(two, rng), twig::common::FatalError);
    EXPECT_THROW(m.fitClosedForm({}), twig::common::FatalError);
}

TEST(PowerModel, ClosedFormClampsNegativeDvfsTerm)
{
    // Construct data where the best linear DVFS coefficient is
    // negative; omega^2 cannot be negative, so omega clamps to 0.
    std::vector<PowerSample> samples;
    Rng rng(5);
    for (double load : {0.2, 0.5, 0.8})
        for (double cores : {2.0, 8.0, 14.0})
            for (double ghz : {1.2, 1.6, 2.0})
                samples.push_back(
                    {load, cores, ghz, 5.0 * load + cores - 2.0 * ghz});
    ServicePowerModel m;
    m.fitClosedForm(samples);
    EXPECT_DOUBLE_EQ(m.omega(), 0.0);
}

TEST(PowerModel, ProfilingCampaignFitMatchesPaperQuality)
{
    // End-to-end: profile masstree on the simulator and fit Eq. 2.
    // The paper reports R^2 = 0.92 and mean PAAE 5.46% (7% max). Our
    // ground truth carries a load x frequency interaction the additive
    // Eq. 2 cannot express, so the reproduction lands at R^2 ~ 0.84 and
    // PAAE ~ 25% (EXPERIMENTS.md discusses the gap).
    const twig::sim::MachineConfig machine;
    const auto samples = twig::harness::profileServicePower(
        twig::services::masstree(), machine, {}, 7);
    ASSERT_GT(samples.size(), 50u);

    ServicePowerModel m;
    Rng rng(8);
    const auto report = m.fit(samples, rng, 4000);
    EXPECT_GT(report.rSquared, 0.78);
    EXPECT_LT(report.paaePercent, 32.0);
    // Every coefficient non-negative (the search space enforces it).
    EXPECT_GE(m.kappa(), 0.0);
    EXPECT_GE(m.sigma(), 0.0);
    EXPECT_GE(m.omega(), 0.0);
}

TEST(PowerModel, CrossValidationScorePopulated)
{
    Rng rng(9);
    const auto samples = syntheticSamples(8.0, 1.0, 2.0, rng, 0.5);
    ServicePowerModel m;
    const auto report = m.fit(samples, rng, 2000);
    EXPECT_GT(report.crossValidationMse, 0.0);
    EXPECT_TRUE(std::isfinite(report.crossValidationMse));
}
