/** @file Tests for harness::SimProfile share reporting, the
 * SimProfileSink share budget, and strict parsing of the profiling
 * flags (tools' --sim-profile / --profile-max-share). */

#include <gtest/gtest.h>

#include "common/flags.hh"
#include "common/sim_counters.hh"
#include "harness/engine.hh"
#include "harness/sim_profile.hh"

using namespace twig;
using common::simprof::Phase;

namespace {

/** Zero all counters, then credit @p cycles to @p phase. */
void
credit(Phase phase, std::uint64_t cycles)
{
    common::simprof::counter(phase).cycles.fetch_add(cycles);
    common::simprof::counter(phase).calls.fetch_add(1);
}

/** Build a snapshot with a known distribution: dispatch 60%,
 * draws 30%, quantile 10%. */
harness::SimProfile
knownDistribution()
{
    common::simprof::resetAll();
    credit(Phase::Dispatch, 600);
    credit(Phase::Draws, 300);
    credit(Phase::Quantile, 100);
    return harness::SimProfile::snapshot();
}

/** Run the parser over an argv-style array. */
common::FlagParser::Result
parseArgs(std::vector<const char *> argv, bool *sim_profile,
          double *max_share)
{
    common::FlagParser parser;
    parser.addBool("--sim-profile", sim_profile, "breakdown");
    parser.addDouble("--profile-max-share", max_share, "budget");
    argv.insert(argv.begin(), "prog");
    return parser.parse(static_cast<int>(argv.size()),
                        const_cast<char **>(argv.data()));
}

} // namespace

TEST(SimProfileShares, SharePctMatchesDistribution)
{
    const auto prof = knownDistribution();
    EXPECT_DOUBLE_EQ(prof.sharePct(Phase::Dispatch), 60.0);
    EXPECT_DOUBLE_EQ(prof.sharePct(Phase::Draws), 30.0);
    EXPECT_DOUBLE_EQ(prof.sharePct(Phase::Quantile), 10.0);
    EXPECT_DOUBLE_EQ(prof.sharePct(Phase::Arrivals), 0.0);
    common::simprof::resetAll();
}

TEST(SimProfileShares, EmptyProfileHasZeroShares)
{
    common::simprof::resetAll();
    const auto prof = harness::SimProfile::snapshot();
    EXPECT_DOUBLE_EQ(prof.sharePct(Phase::Dispatch), 0.0);
    EXPECT_TRUE(prof.phasesAbove(0.0).empty());
}

TEST(SimProfileShares, PhasesAboveIsStrictAndOrdered)
{
    const auto prof = knownDistribution();
    // Strictly above: a threshold equal to a phase's share does not
    // flag it.
    EXPECT_TRUE(prof.phasesAbove(60.0).empty());

    const auto over25 = prof.phasesAbove(25.0);
    ASSERT_EQ(over25.size(), 2u);
    EXPECT_EQ(over25[0], Phase::Dispatch);
    EXPECT_EQ(over25[1], Phase::Draws);

    EXPECT_EQ(prof.phasesAbove(5.0).size(), 3u);
    EXPECT_EQ(prof.phasesAbove(100.0).size(), 0u);
    common::simprof::resetAll();
}

TEST(SimProfileSinkBudget, FlagsPhasesOverBudgetAtEnd)
{
    harness::SimProfileSink sink(50.0);
    harness::ScenarioSpec spec;
    spec.steps = 1;
    sink.begin(spec, {}); // resets + enables the counters
    credit(Phase::Dispatch, 900);
    credit(Phase::Quantile, 100);
    sink.end();
    EXPECT_TRUE(sink.exceeded());
    common::simprof::resetAll();
}

TEST(SimProfileSinkBudget, DefaultBudgetNeverFlags)
{
    harness::SimProfileSink sink;
    harness::ScenarioSpec spec;
    spec.steps = 1;
    sink.begin(spec, {});
    credit(Phase::Dispatch, 1000); // 100% share
    sink.end();
    EXPECT_FALSE(sink.exceeded());
    common::simprof::resetAll();
}

TEST(ProfileFlags, ParsesBudgetValue)
{
    bool sim_profile = false;
    double max_share = 100.0;
    const auto res = parseArgs({"--sim-profile", "--profile-max-share",
                                "42.5"},
                               &sim_profile, &max_share);
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(sim_profile);
    EXPECT_DOUBLE_EQ(max_share, 42.5);
}

TEST(ProfileFlags, RejectsNonNumericBudget)
{
    bool sim_profile = false;
    double max_share = 100.0;
    const auto res = parseArgs({"--profile-max-share", "lots"},
                               &sim_profile, &max_share);
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("--profile-max-share"), std::string::npos);
    EXPECT_DOUBLE_EQ(max_share, 100.0); // untouched on error
}

TEST(ProfileFlags, RejectsMissingBudgetValue)
{
    bool sim_profile = false;
    double max_share = 100.0;
    const auto res = parseArgs({"--profile-max-share"}, &sim_profile,
                               &max_share);
    EXPECT_FALSE(res.ok());
}

TEST(ProfileFlags, RejectsTrailingGarbageInNumber)
{
    bool sim_profile = false;
    double max_share = 100.0;
    const auto res = parseArgs({"--profile-max-share", "40%"},
                               &sim_profile, &max_share);
    EXPECT_FALSE(res.ok());
}
