/** @file Unit tests for the TwigManager facade. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/mapper.hh"
#include "core/twig_manager.hh"
#include "harness/profiling.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig;
using namespace twig::core;

namespace {

TwigServiceSpec
specFor(const sim::ServiceProfile &p)
{
    TwigServiceSpec spec;
    spec.name = p.name;
    spec.qosTargetMs = p.qosTargetMs;
    spec.maxLoadRps = p.maxLoadRps;
    spec.powerModel = ServicePowerModel(10.0, 1.0, 2.0);
    return spec;
}

struct Fixture
{
    sim::MachineConfig machine;
    sim::PmcVector maxima = services::calibrateCounterMaxima(machine);
    sim::Server server{machine, 11};
    Mapper mapper{machine};

    Fixture()
    {
        const auto p = services::masstree();
        server.addService(
            p, std::make_unique<sim::FixedLoad>(p.maxLoadRps, 0.5));
    }

    sim::ServerIntervalStats
    step(TaskManager &, const std::vector<ResourceRequest> &reqs)
    {
        return server.runInterval(mapper.map(reqs));
    }
};

} // namespace

TEST(TwigManager, NameReflectsVariant)
{
    Fixture f;
    TwigManager single(TwigConfig::fast(100), f.machine, f.maxima,
                       {specFor(services::masstree())}, 1);
    EXPECT_EQ(single.name(), "Twig-S");

    TwigManager coloc(TwigConfig::fast(100), f.machine, f.maxima,
                      {specFor(services::masstree()),
                       specFor(services::moses())},
                      2);
    EXPECT_EQ(coloc.name(), "Twig-C");
}

TEST(TwigManager, DecideReturnsValidRequests)
{
    Fixture f;
    TwigManager twig(TwigConfig::fast(100), f.machine, f.maxima,
                     {specFor(services::masstree())}, 3);
    auto reqs = twig.initialRequests(1, f.machine);
    for (int i = 0; i < 10; ++i) {
        const auto stats = f.step(twig, reqs);
        reqs = twig.decide(stats);
        ASSERT_EQ(reqs.size(), 1u);
        EXPECT_GE(reqs[0].numCores, 1u);
        EXPECT_LE(reqs[0].numCores, f.machine.numCores);
        EXPECT_LE(reqs[0].dvfsIndex, f.machine.dvfs.maxIndex());
    }
}

TEST(TwigManager, TransitionsFeedTheLearner)
{
    Fixture f;
    TwigManager twig(TwigConfig::fast(100), f.machine, f.maxima,
                     {specFor(services::masstree())}, 4);
    auto reqs = twig.initialRequests(1, f.machine);
    auto stats = f.step(twig, reqs);
    reqs = twig.decide(stats); // first decide: no transition yet
    EXPECT_EQ(twig.learner().step(), 0u);
    stats = f.step(twig, reqs);
    twig.decide(stats); // second decide closes one transition
    EXPECT_EQ(twig.learner().step(), 1u);
}

TEST(TwigManager, RewardSignMatchesQoS)
{
    Fixture f;
    TwigManager twig(TwigConfig::fast(100), f.machine, f.maxima,
                     {specFor(services::masstree())}, 5);
    auto reqs = twig.initialRequests(1, f.machine);
    auto stats = f.step(twig, reqs);
    twig.decide(stats);

    // Force a generous allocation: QoS met -> positive reward.
    std::vector<ResourceRequest> generous = {
        {f.machine.numCores, f.machine.dvfs.maxIndex()}};
    stats = f.step(twig, generous);
    // Overwrite the manager's notion of what it asked for by deciding
    // directly on generous telemetry (prevActions were its own, but
    // the QoS reward sign depends only on measured latency).
    twig.decide(stats);
    EXPECT_GT(twig.lastReward(0), 0.0);
}

TEST(TwigManager, ExploitOnlySkipsLearning)
{
    Fixture f;
    auto cfg = TwigConfig::fast(100);
    cfg.exploitOnly = true;
    TwigManager twig(cfg, f.machine, f.maxima,
                     {specFor(services::masstree())}, 6);
    auto reqs = twig.initialRequests(1, f.machine);
    for (int i = 0; i < 5; ++i) {
        const auto stats = f.step(twig, reqs);
        reqs = twig.decide(stats);
    }
    EXPECT_EQ(twig.learner().step(), 0u);
}

TEST(TwigManager, TransferServiceSwapsSpecAndReanneals)
{
    Fixture f;
    TwigManager twig(TwigConfig::fast(200), f.machine, f.maxima,
                     {specFor(services::masstree())}, 7);
    auto reqs = twig.initialRequests(1, f.machine);
    for (int i = 0; i < 30; ++i) {
        const auto stats = f.step(twig, reqs);
        reqs = twig.decide(stats);
    }
    twig.transferService(0, specFor(services::xapian()), 20);
    EXPECT_NEAR(twig.learner().epsilon(), 0.1, 1e-9);
    // Next decide must not crash and must not create a cross-service
    // transition (prev state was cleared).
    const std::size_t steps_before = twig.learner().step();
    const auto stats = f.step(twig, reqs);
    twig.decide(stats);
    EXPECT_EQ(twig.learner().step(), steps_before);
}

TEST(TwigManager, Validation)
{
    Fixture f;
    EXPECT_THROW(TwigManager(TwigConfig::fast(100), f.machine, f.maxima,
                             {}, 8),
                 twig::common::FatalError);

    TwigManager twig(TwigConfig::fast(100), f.machine, f.maxima,
                     {specFor(services::masstree()),
                      specFor(services::moses())},
                     9);
    // Telemetry for one service, manager expects two.
    sim::ServerIntervalStats stats;
    stats.services.resize(1);
    EXPECT_THROW(twig.decide(stats), twig::common::FatalError);
    EXPECT_THROW(twig.lastReward(5), twig::common::FatalError);
    EXPECT_THROW(twig.transferService(7, specFor(services::moses())),
                 twig::common::FatalError);
}

TEST(TwigManager, FastPresetScalesWithHorizon)
{
    const auto cfg = TwigConfig::fast(1000);
    EXPECT_EQ(cfg.learner.epsilonMidStep, 500u);
    EXPECT_EQ(cfg.learner.epsilonFinalStep, 800u);
    EXPECT_THROW(TwigConfig::fast(5), twig::common::FatalError);
}

TEST(TwigManager, PaperPresetMatchesSectionFour)
{
    const auto cfg = TwigConfig::paper();
    EXPECT_EQ(cfg.learner.net.trunkHidden,
              (std::vector<std::size_t>{512, 256}));
    EXPECT_EQ(cfg.learner.net.branchHidden, 128u);
    EXPECT_FLOAT_EQ(cfg.learner.net.dropoutRate, 0.5f);
    EXPECT_FLOAT_EQ(cfg.learner.net.adam.learningRate, 0.0025f);
    EXPECT_EQ(cfg.learner.minibatch, 64u);
    EXPECT_DOUBLE_EQ(cfg.learner.discount, 0.99);
    EXPECT_EQ(cfg.learner.targetUpdateInterval, 150u);
    EXPECT_EQ(cfg.learner.epsilonMidStep, 10000u);
    EXPECT_EQ(cfg.learner.epsilonFinalStep, 25000u);
    EXPECT_EQ(cfg.learner.replay.capacity, 1000000u);
    EXPECT_DOUBLE_EQ(cfg.learner.replay.alpha, 0.6);
    EXPECT_EQ(cfg.eta, 5u);
}

TEST(TwigManager, ModelSaveLoadTransfersThePolicy)
{
    Fixture f;
    TwigManager trained(TwigConfig::fast(300), f.machine, f.maxima,
                        {specFor(services::masstree())}, 31);
    auto reqs = trained.initialRequests(1, f.machine);
    for (int i = 0; i < 60; ++i) {
        const auto stats = f.step(trained, reqs);
        reqs = trained.decide(stats);
    }

    std::stringstream model;
    trained.saveModel(model);

    auto cfg = TwigConfig::fast(300);
    cfg.exploitOnly = true;
    TwigManager deployed(cfg, f.machine, f.maxima,
                         {specFor(services::masstree())}, 32);
    deployed.loadModel(model);

    // Identical greedy policies on an arbitrary state.
    std::vector<float> state(sim::kNumPmcs, 0.4f);
    EXPECT_EQ(trained.learner().greedyActions(state),
              deployed.learner().greedyActions(state));
}
