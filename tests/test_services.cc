/** @file Unit tests for the Tailbench catalogue and calibration. */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "sim/server.hh"

using namespace twig::services;
using namespace twig::sim;

TEST(Catalogue, TableTwoOrderAndNames)
{
    const auto cat = tailbenchCatalogue();
    ASSERT_EQ(cat.size(), 4u);
    EXPECT_EQ(cat[0].name, "masstree");
    EXPECT_EQ(cat[1].name, "xapian");
    EXPECT_EQ(cat[2].name, "moses");
    EXPECT_EQ(cat[3].name, "img-dnn");
}

TEST(Catalogue, ByNameRoundTrip)
{
    for (const char *name : {"masstree", "xapian", "moses", "img-dnn",
                             "memcached", "web-search"}) {
        EXPECT_EQ(byName(name).name, name);
    }
}

TEST(Catalogue, UnknownNameThrows)
{
    EXPECT_THROW(byName("redis"), twig::common::FatalError);
}

TEST(Catalogue, AllParametersPositive)
{
    for (const auto &p : {masstree(), xapian(), moses(), imgdnn(),
                          memcached(), websearch()}) {
        EXPECT_GT(p.maxLoadRps, 0.0) << p.name;
        EXPECT_GT(p.qosTargetMs, 0.0) << p.name;
        EXPECT_GT(p.baseServiceTimeMs, 0.0) << p.name;
        EXPECT_GT(p.serviceTimeCv, 0.0) << p.name;
        EXPECT_GT(p.freqExponent, 0.0) << p.name;
        EXPECT_GT(p.instructionsPerReqM, 0.0) << p.name;
        EXPECT_GT(p.llcFootprintMB, 0.0) << p.name;
        EXPECT_GT(p.timeoutMs, p.qosTargetMs) << p.name;
    }
}

TEST(Catalogue, PaperQualitativeTraits)
{
    // §V-B: Masstree is the most bandwidth-interference-sensitive of
    // the four; Moses demands the most bandwidth and LLC capacity.
    const auto cat = tailbenchCatalogue();
    const auto &mt = cat[0];
    const auto &mo = cat[2];
    for (const auto &p : cat) {
        EXPECT_GE(mt.bwSensitivity, p.bwSensitivity) << p.name;
        EXPECT_GE(mo.memTrafficPerReqMB, p.memTrafficPerReqMB) << p.name;
        EXPECT_GE(mo.llcFootprintMB, p.llcFootprintMB) << p.name;
    }
}

TEST(Catalogue, CapacityKneeNearNominalMaxLoad)
{
    // The design rule: base service time puts the 18-core max-DVFS
    // knee (rho = 0.9) at the nominal max load.
    const MachineConfig m;
    for (const auto &p : tailbenchCatalogue()) {
        const double capacity = static_cast<double>(m.numCores) /
            (p.baseServiceTimeMs * 1e-3);
        EXPECT_NEAR(0.9 * capacity, p.maxLoadRps,
                    0.05 * p.maxLoadRps)
            << p.name;
    }
}

TEST(Microbench, ProfilesMatchTheirRoles)
{
    const auto cpu = cpuMaxMicrobench();
    const auto branchy = branchyMicrobench();
    const auto stream = streamMicrobench();
    // cpu-max: no memory accesses.
    EXPECT_EQ(cpu.memTrafficPerReqMB, 0.0);
    EXPECT_LT(cpu.branchMissRate, 0.01);
    // branchy: by far the highest misprediction rate.
    EXPECT_GT(branchy.branchMissRate, 10.0 * cpu.branchMissRate);
    EXPECT_GT(branchy.branchFraction, cpu.branchFraction);
    // stream: saturates bandwidth and misses the LLC.
    EXPECT_GT(stream.memTrafficPerReqMB, 10.0);
    EXPECT_GT(stream.llcBaseMissRate, 0.9);
}

TEST(Calibration, MaximaAreStrictlyPositive)
{
    const auto maxima = calibrateCounterMaxima(MachineConfig{});
    for (std::size_t c = 0; c < kNumPmcs; ++c)
        EXPECT_GT(maxima[c], 0.0) << pmcName(static_cast<Pmc>(c));
}

TEST(Calibration, CeilingsDominateRealServiceIntervals)
{
    // Property (paper's normalisation premise): a real LC service on
    // the full socket never exceeds the microbenchmark ceilings.
    const MachineConfig m;
    const auto maxima = calibrateCounterMaxima(m);
    twig::common::Rng rng(3);
    const PmcModel model(m, rng);
    for (const auto &p : tailbenchCatalogue()) {
        IntervalExecution exec;
        exec.busyCoreSeconds =
            static_cast<double>(m.numCores) * m.intervalSeconds;
        exec.freqGhz = m.dvfs.maxGhz;
        exec.completedRequests = static_cast<std::size_t>(
            p.maxLoadRps * m.intervalSeconds);
        exec.llcMissFactor = 1.5;
        const auto v = model.synthesizeNoiseless(p, exec);
        for (std::size_t c = 0; c < kNumPmcs; ++c) {
            EXPECT_LE(v[c], maxima[c] * 1.001)
                << p.name << " exceeds ceiling for "
                << pmcName(static_cast<Pmc>(c));
        }
    }
}

TEST(Calibration, InstructionCeilingComesFromCpuMax)
{
    // The instruction ceiling must reflect the high-IPC workload.
    const MachineConfig m;
    const auto maxima = calibrateCounterMaxima(m);
    const double cycles =
        static_cast<double>(m.numCores) * m.dvfs.maxGhz * 1e9;
    const double instr =
        maxima[static_cast<std::size_t>(Pmc::InstructionRetired)];
    EXPECT_GT(instr / cycles, 3.0); // cpu-max IPC ~3.8
}

TEST(Catalogue, FullSuiteCoversTailbench)
{
    const auto all = fullCatalogue();
    ASSERT_EQ(all.size(), 8u);
    // The paper's four lead, in Table II order.
    EXPECT_EQ(all[0].name, "masstree");
    EXPECT_EQ(all[3].name, "img-dnn");
    for (const char *extra : {"silo", "sphinx", "shore", "specjbb"})
        EXPECT_EQ(byName(extra).name, extra);
}

TEST(Catalogue, ExtendedServicesHoldTheDesignRules)
{
    const MachineConfig m;
    for (const auto &p : fullCatalogue()) {
        // Knee rule: base service time puts the 18-core max-DVFS knee
        // near the nominal max load.
        const double capacity = static_cast<double>(m.numCores) /
            (p.baseServiceTimeMs * 1e-3);
        EXPECT_NEAR(0.9 * capacity, p.maxLoadRps, 0.06 * p.maxLoadRps)
            << p.name;
        // Timeout comfortably above the QoS target.
        EXPECT_GE(p.timeoutMs, 5.0 * p.qosTargetMs) << p.name;
        EXPECT_GT(p.serviceTimeCv, 0.0) << p.name;
    }
}

TEST(Catalogue, ExtendedServicesRunOnTheServer)
{
    // Smoke: every service meets its target at 50% load on the full
    // socket (the targets were derived with headroom).
    const MachineConfig m;
    for (const auto &p : {silo(), sphinx(), shore(), specjbb()}) {
        Server server(m, 71);
        server.addService(p, std::make_unique<FixedLoad>(
                                 p.maxLoadRps, 0.5));
        CoreAssignment all;
        for (std::size_t i = 0; i < m.numCores; ++i)
            all.dedicatedCores.push_back(i);
        all.freqGhz = all.sharedFreqGhz = m.dvfs.maxGhz;
        double p99 = 0.0;
        for (int i = 0; i < 10; ++i)
            p99 = server.runInterval({all}).services[0].p99Ms;
        EXPECT_LT(p99, p.qosTargetMs) << p.name;
    }
}
