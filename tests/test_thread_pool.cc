/** @file Unit tests for the fixed worker pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"

using twig::common::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTaskOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitPropagatesFirstException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the pool remains usable afterwards.
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForCoversExactlyTheRange)
{
    ThreadPool pool(3);
    constexpr std::size_t kBegin = 7, kEnd = 1000;
    std::vector<std::atomic<int>> hits(kEnd);
    pool.parallelFor(kBegin, kEnd,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kEnd; ++i)
        EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyAndSingleRanges)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.parallelFor(5, 5, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0);
    pool.parallelFor(9, 10, [&](std::size_t i) {
        EXPECT_EQ(i, 9u);
        count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesBodyException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 64,
                                  [](std::size_t i) {
                                      if (i == 13)
                                          throw std::logic_error("boom");
                                  }),
                 std::logic_error);
}

TEST(ThreadPool, ReusableAcrossManyParallelFors)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<long> sum{0};
        pool.parallelFor(0, 100, [&](std::size_t i) {
            sum.fetch_add(static_cast<long>(i));
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<long> sum{0};
    pool.parallelFor(0, 50, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 50 * 49 / 2);
}
