/** @file Unit tests for running statistics and percentile estimation. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "stats/summary.hh"

using namespace twig::stats;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sampleVariance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_NEAR(s.sampleVariance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    twig::common::Rng rng(3);
    RunningStats whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        whole.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // adopt
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Percentile, EmptyReturnsZero)
{
    PercentileEstimator p;
    EXPECT_EQ(p.percentile(99.0), 0.0);
    EXPECT_TRUE(p.empty());
}

TEST(Percentile, MedianOfOddCount)
{
    EXPECT_DOUBLE_EQ(percentileOf({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks)
{
    // p25 of {1,2,3,4}: rank = 0.75 -> 1 + 0.75*(2-1) = 1.75
    EXPECT_DOUBLE_EQ(percentileOf({1.0, 2.0, 3.0, 4.0}, 25.0), 1.75);
}

TEST(Percentile, ExtremesClampToMinMax)
{
    const std::vector<double> v = {5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(percentileOf(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf(v, 100.0), 9.0);
    EXPECT_DOUBLE_EQ(percentileOf(v, -5.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf(v, 120.0), 9.0);
}

TEST(Percentile, P99OfUniformGrid)
{
    std::vector<double> v;
    for (int i = 1; i <= 1000; ++i)
        v.push_back(static_cast<double>(i));
    EXPECT_NEAR(percentileOf(v, 99.0), 990.0, 1.0);
}

TEST(Percentile, EstimatorMatchesFreeFunction)
{
    PercentileEstimator p;
    for (double x : {4.0, 8.0, 15.0, 16.0, 23.0, 42.0})
        p.add(x);
    EXPECT_EQ(p.count(), 6u);
    EXPECT_DOUBLE_EQ(
        p.percentile(50.0),
        percentileOf({4.0, 8.0, 15.0, 16.0, 23.0, 42.0}, 50.0));
}

TEST(Percentile, ClearEmpties)
{
    PercentileEstimator p;
    p.add(1.0);
    p.clear();
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.percentile(50.0), 0.0);
}

class PercentileSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PercentileSweep, MonotoneInP)
{
    // Property: percentile is a non-decreasing function of p.
    twig::common::Rng rng(77);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(rng.normal(0.0, 1.0));
    const double p = GetParam();
    EXPECT_LE(percentileOf(v, p), percentileOf(v, p + 5.0));
}

INSTANTIATE_TEST_SUITE_P(Grid, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0,
                                           90.0, 95.0));
