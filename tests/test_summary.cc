/** @file Unit tests for running statistics and percentile estimation. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "stats/summary.hh"
#include "stats/windowed_quantile.hh"

using namespace twig::stats;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sampleVariance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_NEAR(s.sampleVariance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    twig::common::Rng rng(3);
    RunningStats whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        whole.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // adopt
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Percentile, EmptyReturnsZero)
{
    PercentileEstimator p;
    EXPECT_EQ(p.percentile(99.0), 0.0);
    EXPECT_TRUE(p.empty());
}

TEST(Percentile, MedianOfOddCount)
{
    EXPECT_DOUBLE_EQ(percentileOf({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks)
{
    // p25 of {1,2,3,4}: rank = 0.75 -> 1 + 0.75*(2-1) = 1.75
    EXPECT_DOUBLE_EQ(percentileOf({1.0, 2.0, 3.0, 4.0}, 25.0), 1.75);
}

TEST(Percentile, ExtremesClampToMinMax)
{
    const std::vector<double> v = {5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(percentileOf(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf(v, 100.0), 9.0);
    EXPECT_DOUBLE_EQ(percentileOf(v, -5.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf(v, 120.0), 9.0);
}

TEST(Percentile, P99OfUniformGrid)
{
    std::vector<double> v;
    for (int i = 1; i <= 1000; ++i)
        v.push_back(static_cast<double>(i));
    EXPECT_NEAR(percentileOf(v, 99.0), 990.0, 1.0);
}

TEST(Percentile, EstimatorMatchesFreeFunction)
{
    PercentileEstimator p;
    for (double x : {4.0, 8.0, 15.0, 16.0, 23.0, 42.0})
        p.add(x);
    EXPECT_EQ(p.count(), 6u);
    EXPECT_DOUBLE_EQ(
        p.percentile(50.0),
        percentileOf({4.0, 8.0, 15.0, 16.0, 23.0, 42.0}, 50.0));
}

TEST(Percentile, ClearEmpties)
{
    PercentileEstimator p;
    p.add(1.0);
    p.clear();
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.percentile(50.0), 0.0);
}

class PercentileSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PercentileSweep, MonotoneInP)
{
    // Property: percentile is a non-decreasing function of p.
    twig::common::Rng rng(77);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(rng.normal(0.0, 1.0));
    const double p = GetParam();
    EXPECT_LE(percentileOf(v, p), percentileOf(v, p + 5.0));
}

INSTANTIATE_TEST_SUITE_P(Grid, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0,
                                           90.0, 95.0));

TEST(PercentileSelect, EmptyReturnsZero)
{
    std::vector<double> v;
    EXPECT_EQ(percentileInPlace(v, 50.0), 0.0);
    EXPECT_EQ(percentileSelect(nullptr, 0, 99.0), 0.0);
}

TEST(PercentileSelect, SingleValueAtAnyP)
{
    for (double p : {-10.0, 0.0, 50.0, 99.0, 100.0, 250.0}) {
        std::vector<double> v = {7.5};
        EXPECT_DOUBLE_EQ(percentileInPlace(v, p), 7.5);
    }
}

TEST(PercentileSelect, ClampFoldsExtremesIntoSelection)
{
    // p <= 0 must be the minimum and p >= 100 the maximum without a
    // separate scan — the clamp inside the selection helper handles it.
    std::vector<double> v = {5.0, 1.0, 9.0, -2.0};
    EXPECT_DOUBLE_EQ(percentileInPlace(v, -5.0), -2.0);
    EXPECT_DOUBLE_EQ(percentileInPlace(v, 0.0), -2.0);
    EXPECT_DOUBLE_EQ(percentileInPlace(v, 100.0), 9.0);
    EXPECT_DOUBLE_EQ(percentileInPlace(v, 120.0), 9.0);
}

TEST(PercentileSelect, MatchesSortBasedPercentileExactly)
{
    // Selection over the same multiset must return bit-identical
    // results to sort-then-interpolate: the simulator's QoS numbers
    // rely on this equivalence.
    twig::common::Rng rng(123);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> v;
        const int n = 1 + static_cast<int>(rng.uniformInt(400));
        for (int i = 0; i < n; ++i)
            v.push_back(rng.lognormalMean(2.0, 0.8));

        std::vector<double> sorted = v;
        std::sort(sorted.begin(), sorted.end());
        for (double p : {0.0, 12.5, 50.0, 90.0, 99.0, 100.0}) {
            const double rank =
                std::clamp(p, 0.0, 100.0) / 100.0 *
                static_cast<double>(sorted.size() - 1);
            const std::size_t lo = static_cast<std::size_t>(rank);
            const std::size_t hi =
                std::min(lo + 1, sorted.size() - 1);
            const double frac = rank - static_cast<double>(lo);
            const double expect =
                sorted[lo] + frac * (sorted[hi] - sorted[lo]);

            std::vector<double> scratch = v;
            EXPECT_EQ(percentileInPlace(scratch, p), expect)
                << "trial " << trial << " p " << p;
            EXPECT_EQ(percentileOf(v, p), expect);
        }
    }
}

TEST(PercentileSelect, ConstRefOverloadLeavesInputUntouched)
{
    const std::vector<double> v = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentileOf(v, 50.0), 2.0);
    EXPECT_EQ(v[0], 3.0);
    EXPECT_EQ(v[1], 1.0);
    EXPECT_EQ(v[2], 2.0);
}

TEST(WindowedQuantile, EmptyReturnsZero)
{
    WindowedQuantile w(3);
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.percentile(99.0), 0.0);
    EXPECT_EQ(w.lastIntervalPercentile(99.0), 0.0);
    EXPECT_EQ(w.lastIntervalCount(), 0u);
}

TEST(WindowedQuantile, TracksCountsPerInterval)
{
    WindowedQuantile w(3);
    w.beginInterval();
    w.add(1.0);
    w.add(2.0);
    EXPECT_EQ(w.count(), 2u);
    EXPECT_EQ(w.lastIntervalCount(), 2u);
    EXPECT_EQ(w.intervals(), 1u);

    w.beginInterval();
    w.add(3.0);
    EXPECT_EQ(w.count(), 3u);
    EXPECT_EQ(w.lastIntervalCount(), 1u);
    EXPECT_EQ(w.intervals(), 2u);
}

TEST(WindowedQuantile, EvictsOldestIntervalWhenFull)
{
    WindowedQuantile w(2);
    w.beginInterval();
    w.add(100.0); // will be evicted
    w.beginInterval();
    w.add(1.0);
    w.beginInterval();
    w.add(2.0);
    w.add(3.0);
    // Window now holds {1} and {2, 3}; 100 is gone.
    EXPECT_EQ(w.count(), 3u);
    EXPECT_EQ(w.intervals(), 2u);
    EXPECT_DOUBLE_EQ(w.percentile(100.0), 3.0);
    EXPECT_DOUBLE_EQ(w.percentile(0.0), 1.0);
}

TEST(WindowedQuantile, MatchesConcatenatedPercentileOf)
{
    // Bit-identity with the seed's concatenate-then-sort window.
    twig::common::Rng rng(9);
    WindowedQuantile w(3);
    std::vector<std::vector<double>> recent;
    for (int interval = 0; interval < 10; ++interval) {
        w.beginInterval();
        std::vector<double> batch;
        const int n = static_cast<int>(rng.uniformInt(50));
        for (int i = 0; i < n; ++i) {
            const double x = rng.lognormalMean(5.0, 1.0);
            w.add(x);
            batch.push_back(x);
        }
        recent.push_back(std::move(batch));
        if (recent.size() > 3)
            recent.erase(recent.begin());

        std::vector<double> window;
        for (const auto &b : recent)
            window.insert(window.end(), b.begin(), b.end());
        for (double p : {0.0, 50.0, 99.0, 100.0}) {
            EXPECT_EQ(w.percentile(p), percentileOf(window, p))
                << "interval " << interval << " p " << p;
        }
        EXPECT_EQ(w.lastIntervalPercentile(99.0),
                  percentileOf(recent.back(), 99.0));
    }
}

TEST(WindowedQuantile, ClearEmptiesButKeepsWorking)
{
    WindowedQuantile w(2);
    w.beginInterval();
    w.add(5.0);
    w.clear();
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.intervals(), 0u);
    w.beginInterval();
    w.add(4.0);
    EXPECT_DOUBLE_EQ(w.percentile(50.0), 4.0);
}
