/** @file Integration tests for the live serving front-end
 * (src/serve/): an in-process daemon driven by the load client over
 * TCP loopback, graceful shutdown with a verifiable checkpoint frame,
 * and protocol-error handling at the socket edge. */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hh"
#include "harness/scenario.hh"
#include "serve/daemon.hh"
#include "serve/load_client.hh"
#include "serve/protocol.hh"

using namespace twig;

namespace {

/** A small cluster scenario (2 Twig nodes, one service) so fleet
 * construction stays cheap in unit tests. */
harness::ScenarioSpec
smallSpec()
{
    harness::ScenarioSpec spec;
    spec.name = "serve-test";
    spec.topology = "cluster";
    harness::ServiceLoadSpec svc;
    svc.service = "masstree";
    svc.pattern = "fixed";
    svc.fraction = 0.3;
    spec.services.push_back(svc);
    spec.manager = "twig";
    spec.steps = 120;
    spec.seed = 7;
    spec.nodes = 2;
    spec.policy = "p2c-latency";
    return spec;
}

} // namespace

TEST(Serve, LoopbackRoundTripAndGracefulShutdown)
{
    const std::string ckpt_path =
        ::testing::TempDir() + "serve_daemon_test.ckpt";
    serve::DaemonOptions dopt;
    dopt.port = 0; // ephemeral
    dopt.intervalMs = 5.0;
    dopt.finalCheckpoint = ckpt_path;
    serve::Daemon daemon(smallSpec(), dopt);
    daemon.start();
    ASSERT_GT(daemon.port(), 0);
    ASSERT_EQ(daemon.numServices(), 1u);
    ASSERT_EQ(daemon.maxRps().size(), 1u);
    EXPECT_GT(daemon.maxRps()[0], 0.0);

    serve::LoadClientOptions copt;
    copt.port = daemon.port();
    copt.connections = 2;
    copt.rps = 20000.0;
    copt.durationS = 0.4;
    copt.statsIntervalS = 0.05;
    const auto report = serve::runLoadClient(copt);
    for (const auto &err : report.errors)
        ADD_FAILURE() << err;
    ASSERT_EQ(report.failedConnections, 0u);
    EXPECT_EQ(report.numServices, 1u);
    EXPECT_GT(report.sent, 0u);
    // Every offered request must be acknowledged (open loop, but the
    // Bye handshake drains the ack stream before closing).
    EXPECT_EQ(report.acked, report.sent);
    EXPECT_EQ(report.ackFrames, report.batchFrames);
    // Connection 0 polled the daemon's stats.
    EXPECT_TRUE(report.haveServerStats);
    EXPECT_EQ(report.serverStats.p99Ms.size(), 1u);

    daemon.requestShutdown();
    const auto summary = daemon.join();
    EXPECT_TRUE(daemon.finished());
    // Everything the client offered arrived in the arrival windows.
    EXPECT_EQ(summary.acceptedRequests, report.sent);
    EXPECT_GT(summary.intervals, 0u);
    EXPECT_EQ(summary.listener.accepted, 2u);
    EXPECT_EQ(summary.listener.protocolErrors, 0u);
    ASSERT_EQ(summary.metrics.services.size(), 1u);
    EXPECT_EQ(summary.metrics.services[0].name, "masstree");
    EXPECT_GT(summary.metrics.meanPowerW, 0.0);
    ASSERT_EQ(summary.observedRps.size(), 1u);
    EXPECT_GT(summary.observedRps[0], 0.0);

    // The shutdown checkpoint is a valid checksummed frame holding a
    // non-empty BDQ payload.
    EXPECT_GT(summary.checkpointBytes, 0u);
    std::string payload;
    std::string error;
    ASSERT_TRUE(serve::readCheckpointFile(ckpt_path, payload, error))
        << error;
    EXPECT_GT(payload.size(), 0u);
    std::remove(ckpt_path.c_str());
}

TEST(Serve, GarbageBytesDisconnectWithoutHarm)
{
    serve::DaemonOptions dopt;
    dopt.intervalMs = 5.0;
    serve::Daemon daemon(smallSpec(), dopt);
    daemon.start();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(daemon.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char garbage[] = "not a twig frame at all................";
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
              static_cast<ssize_t>(sizeof(garbage)));
    // The daemon must drop the connection: recv sees EOF (or a
    // reset), never a hang.
    char buf[64];
    ssize_t n;
    do {
        n = ::recv(fd, buf, sizeof(buf), 0);
    } while (n > 0);
    EXPECT_LE(n, 0);
    ::close(fd);

    daemon.requestShutdown();
    const auto summary = daemon.join();
    EXPECT_EQ(summary.listener.protocolErrors, 1u);
    EXPECT_EQ(summary.acceptedRequests, 0u);
}

TEST(Serve, DurationTriggersShutdownByItself)
{
    serve::DaemonOptions dopt;
    dopt.intervalMs = 5.0;
    dopt.durationS = 0.1;
    serve::Daemon daemon(smallSpec(), dopt);
    daemon.start();
    const auto summary = daemon.join(); // returns without an explicit
                                        // requestShutdown
    EXPECT_TRUE(daemon.finished());
    EXPECT_GE(summary.intervals, 10u);
    EXPECT_EQ(summary.checkpointBytes, 0u); // no path configured
}

TEST(Serve, RejectsSingleTopologyScenarios)
{
    auto spec = smallSpec();
    spec.topology = "single";
    serve::DaemonOptions dopt;
    EXPECT_THROW(serve::Daemon(spec, dopt), common::FatalError);
}

TEST(Serve, LiveLoadClampsToCapacity)
{
    serve::LiveLoad load(100.0);
    EXPECT_DOUBLE_EQ(load.rps(0), 0.0);
    EXPECT_DOUBLE_EQ(load.set(40.0), 40.0);
    EXPECT_DOUBLE_EQ(load.rps(123), 40.0);
    EXPECT_DOUBLE_EQ(load.set(250.0), 100.0);
    EXPECT_DOUBLE_EQ(load.rps(0), 100.0);
    EXPECT_DOUBLE_EQ(load.observedRps(), 250.0);
    serve::LiveLoad unclamped(0.0);
    EXPECT_DOUBLE_EQ(unclamped.set(1e9), 1e9);
}
