/** @file Unit tests for tabular Q-learning (Hipster's learner). */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "rl/qtable.hh"

using namespace twig::rl;
using twig::common::Rng;

TEST(QTable, StartsAtInitialValue)
{
    QTableConfig cfg;
    cfg.numStates = 3;
    cfg.numActions = 4;
    cfg.optimisticInit = 2.5;
    QTable q(cfg);
    EXPECT_DOUBLE_EQ(q.value(2, 3), 2.5);
}

TEST(QTable, UpdateRuleMath)
{
    QTableConfig cfg;
    cfg.numStates = 2;
    cfg.numActions = 2;
    cfg.learningRate = 0.5;
    cfg.discount = 0.9;
    QTable q(cfg);
    // Q(0,1) <- 0 + 0.5 * (1 + 0.9*max_a Q(1,a) - 0) = 0.5
    const double td = q.update(0, 1, 1.0, 1);
    EXPECT_DOUBLE_EQ(td, 1.0);
    EXPECT_DOUBLE_EQ(q.value(0, 1), 0.5);
    // Second update bootstraps from Q(1,.) = 0 still.
    q.update(0, 1, 1.0, 1);
    EXPECT_DOUBLE_EQ(q.value(0, 1), 0.75);
}

TEST(QTable, BootstrapUsesMaxOfNextState)
{
    QTableConfig cfg;
    cfg.numStates = 2;
    cfg.numActions = 2;
    cfg.learningRate = 1.0;
    cfg.discount = 0.5;
    QTable q(cfg);
    q.updateTerminal(1, 0, 4.0); // Q(1,0) = 4
    q.update(0, 0, 1.0, 1);      // target = 1 + 0.5*4 = 3
    EXPECT_DOUBLE_EQ(q.value(0, 0), 3.0);
}

TEST(QTable, TerminalUpdateSkipsBootstrap)
{
    QTableConfig cfg;
    cfg.numStates = 1;
    cfg.numActions = 1;
    cfg.learningRate = 1.0;
    QTable q(cfg);
    q.updateTerminal(0, 0, -7.0);
    EXPECT_DOUBLE_EQ(q.value(0, 0), -7.0);
}

TEST(QTable, GreedyPicksHighestValue)
{
    QTableConfig cfg;
    cfg.numStates = 1;
    cfg.numActions = 3;
    cfg.learningRate = 1.0;
    QTable q(cfg);
    q.updateTerminal(0, 1, 5.0);
    q.updateTerminal(0, 2, 3.0);
    EXPECT_EQ(q.greedy(0), 1u);
}

TEST(QTable, GreedyTieBreaksTowardLowerIndex)
{
    QTableConfig cfg;
    cfg.numStates = 1;
    cfg.numActions = 3;
    QTable q(cfg);
    EXPECT_EQ(q.greedy(0), 0u);
}

TEST(QTable, SelectExploresAndExploits)
{
    QTableConfig cfg;
    cfg.numStates = 1;
    cfg.numActions = 10;
    cfg.learningRate = 1.0;
    QTable q(cfg);
    q.updateTerminal(0, 4, 100.0);
    Rng rng(1);
    // epsilon = 0: always greedy.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(q.select(0, 0.0, rng), 4u);
    // epsilon = 1: hits other actions too.
    std::size_t other = 0;
    for (int i = 0; i < 200; ++i)
        other += q.select(0, 1.0, rng) != 4u;
    EXPECT_GT(other, 100u);
}

TEST(QTable, MemoryBytesScalesWithTable)
{
    QTableConfig cfg;
    cfg.numStates = 25;
    cfg.numActions = 162;
    QTable q(cfg);
    EXPECT_EQ(q.memoryBytes(), 25u * 162u * sizeof(double));
}

TEST(QTable, OutOfRangePanics)
{
    QTableConfig cfg;
    cfg.numStates = 2;
    cfg.numActions = 2;
    QTable q(cfg);
    EXPECT_THROW(q.value(2, 0), twig::common::PanicError);
    EXPECT_THROW(q.value(0, 2), twig::common::PanicError);
}

TEST(QTable, EmptyTableThrows)
{
    QTableConfig cfg;
    cfg.numStates = 0;
    EXPECT_THROW(QTable{cfg}, twig::common::FatalError);
}

TEST(QTable, ConvergesOnTwoArmBandit)
{
    QTableConfig cfg;
    cfg.numStates = 1;
    cfg.numActions = 2;
    cfg.learningRate = 0.2;
    cfg.discount = 0.0; // pure bandit
    QTable q(cfg);
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        const std::size_t a = q.select(0, 0.3, rng);
        const double r = a == 1 ? 1.0 : 0.2;
        q.updateTerminal(0, a, r);
    }
    EXPECT_EQ(q.greedy(0), 1u);
    EXPECT_NEAR(q.value(0, 1), 1.0, 0.1);
}
