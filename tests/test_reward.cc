/** @file Unit tests for the Eq. 1 reward function. */

#include <gtest/gtest.h>

#include "core/reward.hh"

using namespace twig::core;

TEST(Reward, MetBranchAddsPowerTerm)
{
    Reward r;
    // tardiness 0.8, power reward 100/25 = 4, theta 0.5.
    EXPECT_DOUBLE_EQ(r(8.0, 10.0, 25.0, 100.0), 0.8 + 0.5 * 4.0);
}

TEST(Reward, ExactlyOnTargetCountsAsMet)
{
    Reward r;
    EXPECT_GT(r(10.0, 10.0, 50.0, 100.0), 0.0);
}

TEST(Reward, ViolationIsNegativePowerIgnored)
{
    Reward r;
    const double v1 = r(15.0, 10.0, 1.0, 100.0);
    const double v2 = r(15.0, 10.0, 99.0, 100.0);
    EXPECT_LT(v1, 0.0);
    EXPECT_DOUBLE_EQ(v1, v2); // power does not matter when violating
    // -(1.5)^3 = -3.375
    EXPECT_DOUBLE_EQ(v1, -3.375);
}

TEST(Reward, PenaltyCappedAtVarphi)
{
    Reward r;
    EXPECT_DOUBLE_EQ(r(1000.0, 10.0, 1.0, 100.0), -100.0);
}

TEST(Reward, PenaltyGrowsWithViolationSeverity)
{
    Reward r;
    EXPECT_GT(r(11.0, 10.0, 10.0, 100.0), r(20.0, 10.0, 10.0, 100.0));
}

TEST(Reward, LowerPowerEstimateHigherReward)
{
    Reward r;
    EXPECT_GT(r(8.0, 10.0, 20.0, 100.0), r(8.0, 10.0, 40.0, 100.0));
}

TEST(Reward, RidingTheTargetBeatsOverdelivering)
{
    // Same power estimate: tardiness 0.95 slightly out-rewards 0.5
    // (the QoS term nudges toward "just meeting", paper §III-B2).
    Reward r;
    EXPECT_GT(r(9.5, 10.0, 30.0, 100.0), r(5.0, 10.0, 30.0, 100.0));
}

TEST(Reward, ThetaBalancesPowerTerm)
{
    RewardConfig cfg;
    cfg.theta = 0.0;
    Reward no_power(cfg);
    EXPECT_DOUBLE_EQ(no_power(8.0, 10.0, 5.0, 100.0), 0.8);

    cfg.theta = 1.0;
    Reward strong(cfg);
    EXPECT_DOUBLE_EQ(strong(8.0, 10.0, 5.0, 100.0), 0.8 + 20.0);
}

TEST(Reward, PhiControlsPenaltyCurvature)
{
    RewardConfig cfg;
    cfg.phi = 1.0;
    Reward linear(cfg);
    EXPECT_DOUBLE_EQ(linear(20.0, 10.0, 1.0, 100.0), -2.0);
}

TEST(Reward, TinyPowerEstimateIsGuarded)
{
    Reward r;
    // estimated power 0 must not divide by zero.
    const double v = r(8.0, 10.0, 0.0, 100.0);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
}

TEST(Reward, Validation)
{
    RewardConfig bad;
    bad.varphi = 1.0;
    EXPECT_THROW(Reward{bad}, twig::common::FatalError);
    bad = RewardConfig{};
    bad.phi = 0.0;
    EXPECT_THROW(Reward{bad}, twig::common::FatalError);

    Reward r;
    EXPECT_THROW(r(1.0, 0.0, 1.0, 100.0), twig::common::FatalError);
}
