/** @file Unit tests for the fleet simulator (src/cluster/). */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/static_manager.hh"
#include "cluster/cluster_manager.hh"
#include "cluster/router.hh"
#include "cluster/sharded_router.hh"
#include "common/error.hh"
#include "core/twig_manager.hh"
#include "faults/fault_spec.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"
#include "stats/histogram.hh"

using namespace twig;
using namespace twig::cluster;
using twig::common::FatalError;

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

ClusterManager::ManagerFactory
staticNodes()
{
    return [](const sim::MachineConfig &machine,
              const std::vector<sim::ServiceProfile> &,
              std::uint64_t) -> std::unique_ptr<core::TaskManager> {
        return std::make_unique<baselines::StaticManager>(machine);
    };
}

/** Twig nodes with a fixed (unprofiled) power model: the RL loop and
 * its RNG run for real, only the Eq. 2 fit is canned for speed. */
ClusterManager::ManagerFactory
twigNodes(std::size_t horizon)
{
    return [horizon](const sim::MachineConfig &machine,
                     const std::vector<sim::ServiceProfile> &svcs,
                     std::uint64_t seed)
        -> std::unique_ptr<core::TaskManager> {
        const auto maxima = services::calibrateCounterMaxima(machine);
        std::vector<core::TwigServiceSpec> specs;
        for (const auto &p : svcs) {
            core::TwigServiceSpec spec;
            spec.name = p.name;
            spec.qosTargetMs = p.qosTargetMs;
            spec.maxLoadRps = p.maxLoadRps;
            spec.powerModel = core::ServicePowerModel(10.0, 1.0, 2.0);
            specs.push_back(spec);
        }
        return std::make_unique<core::TwigManager>(
            core::TwigConfig::fast(horizon), machine, maxima,
            std::move(specs), seed);
    };
}

/** A small heterogeneous fleet under a diurnal load. */
ClusterManager
makeFleet(RoutingPolicy policy, std::size_t jobs, std::size_t nodes,
          const ClusterManager::ManagerFactory &factory,
          std::size_t steps, std::size_t domains = 1,
          const std::string &warm_checkpoint = "", bool hetero = true)
{
    const auto masstree = services::masstree();
    ClusterConfig cfg;
    cfg.router.policy = policy;
    cfg.jobs = jobs;
    cfg.domains = domains;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(std::make_unique<sim::DiurnalLoad>(
        masstree.maxLoadRps * static_cast<double>(nodes), 0.15, 0.4,
        steps / 2));
    ClusterManager fleet(cfg, {masstree}, std::move(loads), 42);
    for (std::size_t n = 0; n < nodes; ++n) {
        sim::MachineConfig machine;
        if (hetero && n % 2 == 1)
            machine.numCores = 6;
        fleet.addNode(machine, factory, warm_checkpoint);
    }
    return fleet;
}

/** Twig nodes frozen in exploit-only mode (the batched-inference
 * cohort precondition; combined with a shared warm-start checkpoint
 * all same-shape replicas hold identical parameters). */
ClusterManager::ManagerFactory
exploitTwigNodes(std::size_t horizon)
{
    const auto inner = twigNodes(horizon);
    return [inner](const sim::MachineConfig &machine,
                   const std::vector<sim::ServiceProfile> &svcs,
                   std::uint64_t seed)
        -> std::unique_ptr<core::TaskManager> {
        auto manager = inner(machine, svcs, seed);
        dynamic_cast<core::TwigManager &>(*manager).setExploitOnly(
            true);
        return manager;
    };
}

/** Train a small homogeneous-shape donor pair and checkpoint the
 * 18-core one (makeFleet's even-node shape). Returns the path. */
std::string
trainDonorCheckpoint(const std::string &name)
{
    const std::string path = tmpPath(name);
    auto donor_fleet =
        makeFleet(RoutingPolicy::Static, 1, 1, twigNodes(20), 20);
    donor_fleet.run(20, 5);
    auto *donor = dynamic_cast<core::TwigManager *>(
        &donor_fleet.node(0).manager());
    donor->saveCheckpoint(path);
    return path;
}

faults::FaultAction
crashAction(std::size_t at, std::size_t node, std::size_t restart_after,
            const std::string &recovery)
{
    faults::FaultAction a;
    a.kind = faults::FaultKind::NodeCrash;
    a.atStep = at;
    a.node = node;
    a.restartAfterSteps = restart_after;
    a.recovery = recovery;
    return a;
}

void
expectIdenticalTraces(const FleetRunResult &a, const FleetRunResult &b)
{
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t t = 0; t < a.trace.size(); ++t) {
        const auto &fa = a.trace[t];
        const auto &fb = b.trace[t];
        // Bit-identical, not approximately equal: the thread count
        // must not leak into any simulated quantity.
        EXPECT_EQ(fa.offeredRps, fb.offeredRps) << "step " << t;
        EXPECT_EQ(fa.fleetP99Ms, fb.fleetP99Ms) << "step " << t;
        EXPECT_EQ(fa.totalPowerW, fb.totalPowerW) << "step " << t;
        ASSERT_EQ(fa.nodes.size(), fb.nodes.size());
        for (std::size_t n = 0; n < fa.nodes.size(); ++n) {
            EXPECT_EQ(fa.nodes[n].socketPowerW,
                      fb.nodes[n].socketPowerW)
                << "step " << t << " node " << n;
            ASSERT_EQ(fa.nodes[n].services.size(),
                      fb.nodes[n].services.size());
            for (std::size_t s = 0; s < fa.nodes[n].services.size();
                 ++s) {
                EXPECT_EQ(fa.nodes[n].services[s].p99Ms,
                          fb.nodes[n].services[s].p99Ms)
                    << "step " << t << " node " << n;
            }
        }
    }
    EXPECT_EQ(a.metrics.windowP99Ms, b.metrics.windowP99Ms);
    EXPECT_EQ(a.metrics.meanPowerW, b.metrics.meanPowerW);
}

} // namespace

TEST(Router, PolicyNamesRoundTrip)
{
    for (const char *name : {"static", "wrr", "p2c-latency"})
        EXPECT_STREQ(routingPolicyName(routingPolicyByName(name)), name);
    EXPECT_THROW(routingPolicyByName("round-robin"), FatalError);
}

TEST(Router, StaticSplitsEqually)
{
    Router router({RoutingPolicy::Static, 64}, 1);
    const auto out =
        router.route({900.0, 300.0}, {1.0, 2.0, 1.0}, {});
    ASSERT_EQ(out.size(), 3u);
    for (const auto &node : out) {
        EXPECT_DOUBLE_EQ(node[0], 300.0); // weights ignored by design
        EXPECT_DOUBLE_EQ(node[1], 100.0);
    }
}

TEST(Router, WrrIsCapacityProportionalAndConserving)
{
    Router router({RoutingPolicy::WeightedRoundRobin, 300}, 1);
    const auto out = router.route({600.0}, {2.0, 1.0}, {});
    // 300 quanta at 2:1 weights split exactly 200:100.
    EXPECT_NEAR(out[0][0], 400.0, 1e-9);
    EXPECT_NEAR(out[1][0], 200.0, 1e-9);
    EXPECT_NEAR(out[0][0] + out[1][0], 600.0, 1e-9);
}

TEST(Router, P2cConservesLoadAndAvoidsTardyNodes)
{
    Router router({RoutingPolicy::PowerOfTwoLatency, 256}, 7);
    RouterFeedback feedback;
    // Node 2 blew its tail-latency target by 3x last interval.
    feedback.p99MsByNode = {{10.0}, {10.0}, {90.0}};
    feedback.qosTargetsMs = {30.0};
    const auto out =
        router.route({900.0}, {1.0, 1.0, 1.0}, feedback);
    EXPECT_NEAR(out[0][0] + out[1][0] + out[2][0], 900.0, 1e-9);
    EXPECT_LT(out[2][0], out[0][0]);
    EXPECT_LT(out[2][0], out[1][0]);
}

TEST(Router, Validation)
{
    Router router({RoutingPolicy::Static, 64}, 1);
    EXPECT_THROW(router.route({100.0}, {}, {}), FatalError);
    EXPECT_THROW(router.route({100.0}, {1.0, 0.0}, {}), FatalError);
    EXPECT_THROW(router.route({-1.0}, {1.0}, {}), FatalError);
    EXPECT_THROW(Router({RoutingPolicy::Static, 0}, 1), FatalError);
}

TEST(ClusterManager, ParallelSteppingIsBitIdenticalStaticNodes)
{
    auto serial = makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 3,
                            staticNodes(), 30);
    auto threaded = makeFleet(RoutingPolicy::PowerOfTwoLatency, 4, 3,
                              staticNodes(), 30);
    expectIdenticalTraces(serial.run(30, 10), threaded.run(30, 10));
}

TEST(ClusterManager, ParallelSteppingIsBitIdenticalTwigNodes)
{
    // Twig nodes exercise per-node learner RNG and training inside
    // the worker threads; results must still match the serial run.
    auto serial = makeFleet(RoutingPolicy::WeightedRoundRobin, 1, 2,
                            twigNodes(20), 20);
    auto threaded = makeFleet(RoutingPolicy::WeightedRoundRobin, 2, 2,
                              twigNodes(20), 20);
    expectIdenticalTraces(serial.run(20, 5), threaded.run(20, 5));
}

TEST(ClusterManager, MetricsCoverEveryService)
{
    auto fleet =
        makeFleet(RoutingPolicy::Static, 1, 2, staticNodes(), 20);
    const auto result = fleet.run(20, 8);
    ASSERT_EQ(result.metrics.serviceNames.size(), 1u);
    EXPECT_EQ(result.metrics.serviceNames[0], "masstree");
    EXPECT_GT(result.metrics.windowP99Ms[0], 0.0);
    EXPECT_GE(result.metrics.qosGuaranteePct[0], 0.0);
    EXPECT_LE(result.metrics.qosGuaranteePct[0], 100.0);
    EXPECT_GT(result.metrics.meanPowerW, 0.0);
    EXPECT_EQ(result.metrics.windowSteps, 8u);
    EXPECT_EQ(result.trace.size(), 20u);
}

TEST(ClusterManager, WarmStartRestoresDonorPolicy)
{
    const std::string path = tmpPath("cluster_donor.ckpt");
    auto donor_fleet = makeFleet(RoutingPolicy::Static, 1, 1,
                                 twigNodes(15), 15);
    donor_fleet.run(15, 5);
    auto *donor = dynamic_cast<core::TwigManager *>(
        &donor_fleet.node(0).manager());
    ASSERT_NE(donor, nullptr);
    donor->saveCheckpoint(path);

    const auto masstree = services::masstree();
    ClusterConfig cfg;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    ClusterManager fleet(cfg, {masstree}, std::move(loads), 99);
    fleet.addNode(sim::MachineConfig{}, twigNodes(15), path);

    auto *warm = dynamic_cast<core::TwigManager *>(
        &fleet.node(0).manager());
    ASSERT_NE(warm, nullptr);
    const std::vector<float> state(
        warm->learner().config().net.numAgents *
            warm->learner().config().net.stateDimPerAgent,
        0.3f);
    EXPECT_EQ(donor->learner().greedyActions(state),
              warm->learner().greedyActions(state));
}

TEST(ClusterManager, WarmStartRejectsNonTwigManagers)
{
    const auto masstree = services::masstree();
    ClusterConfig cfg;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    ClusterManager fleet(cfg, {masstree}, std::move(loads), 1);
    EXPECT_THROW(fleet.addNode(sim::MachineConfig{}, staticNodes(),
                               tmpPath("whatever.ckpt")),
                 FatalError);
}

TEST(ShardedRouter, OneDomainMatchesFlatRouterExactly)
{
    // domains == 1 must replay the flat router's RNG draw sequence bit
    // for bit: the fleet vectors are forwarded verbatim and domain 0
    // inherits the caller's seed.
    const RouterConfig rcfg{RoutingPolicy::PowerOfTwoLatency, 256};
    Router flat(rcfg, 7);
    ShardedRouter sharded({rcfg, 1}, 7);

    const std::vector<double> weights = {1.0, 2.0, 1.0, 1.5, 1.0};
    RouterFeedback feedback;
    std::vector<std::vector<double>> flat_out, sharded_out;
    for (int interval = 0; interval < 5; ++interval) {
        const std::vector<double> rps = {900.0 + 10.0 * interval,
                                         300.0};
        ASSERT_TRUE(flat.routeInto(rps, weights, feedback, flat_out));
        ASSERT_TRUE(
            sharded.routeInto(rps, weights, feedback, sharded_out));
        EXPECT_EQ(flat_out, sharded_out) << "interval " << interval;
        // Feed the routed shares back as fake p99s so later intervals
        // exercise the latency-aware branch too.
        feedback.p99MsByNode.assign(weights.size(), {10.0, 10.0});
        feedback.p99MsByNode[2] = {90.0, 20.0};
        feedback.qosTargetsMs = {30.0, 30.0};
    }
}

TEST(ShardedRouter, SplitsAcrossDomainsAndConservesLoad)
{
    ShardedRouter router({{RoutingPolicy::PowerOfTwoLatency, 256}, 4},
                         11);
    const std::vector<double> weights(8, 1.0);
    std::vector<std::vector<double>> out;
    ASSERT_TRUE(router.routeInto({800.0, 240.0}, weights, {}, out));
    ASSERT_EQ(out.size(), 8u);
    EXPECT_EQ(router.numDomains(), 4u);
    for (std::size_t d = 0; d < 4; ++d) {
        EXPECT_EQ(router.domain(d).count, 2u);
        EXPECT_EQ(router.domainOf(router.domain(d).first), d);
    }
    double total0 = 0.0, total1 = 0.0;
    for (const auto &row : out) {
        total0 += row[0];
        total1 += row[1];
    }
    EXPECT_NEAR(total0, 800.0, 1e-6);
    EXPECT_NEAR(total1, 240.0, 1e-6);
}

TEST(ShardedRouter, DomainEvictionShedsToSiblingDomains)
{
    // Evicting every node of one domain must renormalise its share
    // onto the sibling domains, not abort or drop load.
    ShardedRouter router({{RoutingPolicy::WeightedRoundRobin, 300}, 4},
                         3);
    const std::vector<double> weights(8, 1.0);
    router.evict(0);
    router.evict(1); // domain 0 = nodes {0, 1}: now dark
    std::vector<std::vector<double>> out;
    ASSERT_TRUE(router.routeInto({600.0}, weights, {}, out));
    EXPECT_EQ(router.upCountInDomain(0), 0u);
    EXPECT_EQ(out[0][0], 0.0);
    EXPECT_EQ(out[1][0], 0.0);
    double total = 0.0;
    for (const auto &row : out)
        total += row[0];
    EXPECT_NEAR(total, 600.0, 1e-6);

    router.readmit(0);
    ASSERT_TRUE(router.routeInto({600.0}, weights, {}, out));
    EXPECT_GT(out[0][0], 0.0);
}

TEST(ShardedRouter, AllDomainsDownShedsTheInterval)
{
    ShardedRouter router({{RoutingPolicy::Static, 64}, 2}, 5);
    const std::vector<double> weights(4, 1.0);
    for (std::size_t n = 0; n < 4; ++n)
        router.evict(n);
    std::vector<std::vector<double>> out;
    EXPECT_FALSE(router.routeInto({500.0}, weights, {}, out));
    ASSERT_EQ(out.size(), 4u);
    for (const auto &row : out)
        EXPECT_EQ(row[0], 0.0);
}

TEST(ShardedRouter, Validation)
{
    EXPECT_THROW(ShardedRouter({{RoutingPolicy::Static, 64}, 0}, 1),
                 FatalError);

    ShardedRouter too_many({{RoutingPolicy::Static, 64}, 4}, 1);
    std::vector<std::vector<double>> out;
    EXPECT_THROW(too_many.routeInto({100.0}, {1.0, 1.0}, {}, out),
                 FatalError);

    ShardedRouter fixed({{RoutingPolicy::Static, 64}, 2}, 1);
    ASSERT_TRUE(
        fixed.routeInto({100.0}, {1.0, 1.0, 1.0, 1.0}, {}, out));
    EXPECT_THROW(fixed.routeInto({100.0}, std::vector<double>(6, 1.0),
                                 {}, out),
                 FatalError); // the partition is fixed at first use

    EXPECT_THROW(ShardedRouter({{RoutingPolicy::Static, 64}, 2}, 1)
                     .domainOf(0),
                 FatalError); // not bound yet
}

TEST(ClusterManager, HierarchicalMergeMatchesFlatNodeMerge)
{
    // The returned fleet telemetry goes node -> domain -> fleet; this
    // checks the per-domain histograms against a manual flat merge of
    // the node histograms, bin for bin, every step.
    auto fleet = makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 6,
                           staticNodes(), 12, /*domains=*/3);
    for (std::size_t t = 0; t < 12; ++t) {
        fleet.step();
        stats::Histogram flat(0.0,
                              services::masstree().qosTargetMs * 32.0,
                              1024);
        for (std::size_t n = 0; n < 6; ++n)
            flat.merge(fleet.node(n).intervalHistogram(0));

        stats::Histogram fleet_merged(
            0.0, services::masstree().qosTargetMs * 32.0, 1024);
        for (std::size_t d = 0; d < 3; ++d)
            fleet_merged.merge(fleet.domainHistogram(d, 0));

        ASSERT_EQ(fleet_merged.count(), flat.count()) << "step " << t;
        for (std::size_t b = 0; b < flat.bins(); ++b)
            ASSERT_EQ(fleet_merged.binCount(b), flat.binCount(b))
                << "step " << t << " bin " << b;
    }
}

TEST(ClusterManager, HierarchicalMergeSkipsCrashedNodes)
{
    // A crashed replica serves no samples: its domain's histogram must
    // cover exactly the surviving members (a partial merge), and the
    // fleet merge must equal the flat merge over up nodes throughout
    // crash and restart.
    auto fleet = makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 6,
                           staticNodes(), 16, /*domains=*/3);
    faults::FaultSpec spec;
    spec.actions.push_back(crashAction(3, 2, 5, "cold"));
    fleet.setFaults(spec);
    const double hi = services::masstree().qosTargetMs * 32.0;
    for (std::size_t t = 0; t < 16; ++t) {
        fleet.step();
        stats::Histogram flat(0.0, hi, 1024);
        for (std::size_t n = 0; n < 6; ++n) {
            if (fleet.isNodeUp(n))
                flat.merge(fleet.node(n).intervalHistogram(0));
        }
        stats::Histogram merged(0.0, hi, 1024);
        for (std::size_t d = 0; d < 3; ++d)
            merged.merge(fleet.domainHistogram(d, 0));
        ASSERT_EQ(merged.count(), flat.count()) << "step " << t;
        for (std::size_t b = 0; b < flat.bins(); ++b)
            ASSERT_EQ(merged.binCount(b), flat.binCount(b))
                << "step " << t << " bin " << b;
        if (t == 4)
            EXPECT_FALSE(fleet.isNodeUp(2)); // mid-outage sanity
    }
}

TEST(ClusterManager, BatchedInferenceMatchesPerNodeDecidesExactly)
{
    // 200 intervals of a warm-started exploit-only fleet, decided two
    // ways: per-node greedy forwards vs one batched cohort GEMM per
    // interval. Every simulated quantity must be bit-identical.
    const std::string path = trainDonorCheckpoint("batch_donor.ckpt");
    auto batched =
        makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 4,
                  exploitTwigNodes(200), 200, /*domains=*/2, path,
                  /*hetero=*/false);
    auto pernode =
        makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 4,
                  exploitTwigNodes(200), 200, /*domains=*/2, path,
                  /*hetero=*/false);
    pernode.setBatchedInference(false);

    const auto batched_result = batched.run(200, 50);
    const auto pernode_result = pernode.run(200, 50);
    EXPECT_EQ(batched.batchedNodeCount(), 4u);
    EXPECT_EQ(pernode.batchedNodeCount(), 0u);
    EXPECT_GT(batched.phaseProfile().forwardCycles, 0u);
    expectIdenticalTraces(batched_result, pernode_result);
}

TEST(ClusterManager, ParallelSteppingBitIdenticalWithDomainsAndBatching)
{
    // The full two-level path (domain routing + hierarchical merge +
    // batched cohorts) must stay bit-identical at any --jobs.
    const std::string path = trainDonorCheckpoint("jobs_donor.ckpt");
    auto serial =
        makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 4,
                  exploitTwigNodes(30), 30, /*domains=*/2, path,
                  /*hetero=*/false);
    auto threaded =
        makeFleet(RoutingPolicy::PowerOfTwoLatency, 4, 4,
                  exploitTwigNodes(30), 30, /*domains=*/2, path,
                  /*hetero=*/false);
    expectIdenticalTraces(serial.run(30, 10), threaded.run(30, 10));
}

TEST(ClusterManager, OneDomainShardedMatchesFlatReferenceControl)
{
    // The refactored control plane at domains == 1 vs the pre-sharding
    // flat path (flat router, in-node decides, flat merge): byte for
    // byte the same fleet history.
    auto sharded = makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 3,
                             twigNodes(25), 25);
    auto flat = makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 3,
                          twigNodes(25), 25);
    flat.setFlatReferenceControl(true);
    expectIdenticalTraces(sharded.run(25, 8), flat.run(25, 8));
}

TEST(ClusterManager, FlatReferenceControlRequiresOneDomain)
{
    auto fleet = makeFleet(RoutingPolicy::Static, 1, 4, staticNodes(),
                           10, /*domains=*/2);
    EXPECT_THROW(fleet.setFlatReferenceControl(true), FatalError);
    fleet.setFlatReferenceControl(false); // turning it off is fine
}

TEST(ClusterManager, DomainCountMustNotExceedNodes)
{
    EXPECT_THROW(makeFleet(RoutingPolicy::Static, 1, 2, staticNodes(),
                           10, /*domains=*/4)
                     .step(),
                 FatalError);
}

TEST(ClusterManager, Validation)
{
    const auto masstree = services::masstree();
    ClusterConfig cfg;

    // One load generator per service, no more, no less.
    std::vector<std::unique_ptr<sim::LoadGenerator>> none;
    EXPECT_THROW(ClusterManager(cfg, {masstree}, std::move(none), 1),
                 FatalError);
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    EXPECT_THROW(ClusterManager(cfg, {}, std::move(loads), 1),
                 FatalError);

    std::vector<std::unique_ptr<sim::LoadGenerator>> one;
    one.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    ClusterManager fleet(cfg, {masstree}, std::move(one), 1);
    EXPECT_THROW(fleet.step(), FatalError); // no nodes yet
    fleet.addNode(sim::MachineConfig{}, staticNodes());
    EXPECT_THROW(fleet.run(0, 1), FatalError);
    EXPECT_THROW(fleet.run(10, 11), FatalError);
    EXPECT_THROW(fleet.node(5), FatalError);
}
