/** @file Unit tests for the fleet simulator (src/cluster/). */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/static_manager.hh"
#include "cluster/cluster_manager.hh"
#include "cluster/router.hh"
#include "common/error.hh"
#include "core/twig_manager.hh"
#include "services/microbench.hh"
#include "services/tailbench.hh"
#include "sim/loadgen.hh"

using namespace twig;
using namespace twig::cluster;
using twig::common::FatalError;

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

ClusterManager::ManagerFactory
staticNodes()
{
    return [](const sim::MachineConfig &machine,
              const std::vector<sim::ServiceProfile> &,
              std::uint64_t) -> std::unique_ptr<core::TaskManager> {
        return std::make_unique<baselines::StaticManager>(machine);
    };
}

/** Twig nodes with a fixed (unprofiled) power model: the RL loop and
 * its RNG run for real, only the Eq. 2 fit is canned for speed. */
ClusterManager::ManagerFactory
twigNodes(std::size_t horizon)
{
    return [horizon](const sim::MachineConfig &machine,
                     const std::vector<sim::ServiceProfile> &svcs,
                     std::uint64_t seed)
        -> std::unique_ptr<core::TaskManager> {
        const auto maxima = services::calibrateCounterMaxima(machine);
        std::vector<core::TwigServiceSpec> specs;
        for (const auto &p : svcs) {
            core::TwigServiceSpec spec;
            spec.name = p.name;
            spec.qosTargetMs = p.qosTargetMs;
            spec.maxLoadRps = p.maxLoadRps;
            spec.powerModel = core::ServicePowerModel(10.0, 1.0, 2.0);
            specs.push_back(spec);
        }
        return std::make_unique<core::TwigManager>(
            core::TwigConfig::fast(horizon), machine, maxima,
            std::move(specs), seed);
    };
}

/** A small heterogeneous fleet under a diurnal load. */
ClusterManager
makeFleet(RoutingPolicy policy, std::size_t jobs, std::size_t nodes,
          const ClusterManager::ManagerFactory &factory,
          std::size_t steps)
{
    const auto masstree = services::masstree();
    ClusterConfig cfg;
    cfg.router.policy = policy;
    cfg.jobs = jobs;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(std::make_unique<sim::DiurnalLoad>(
        masstree.maxLoadRps * static_cast<double>(nodes), 0.15, 0.4,
        steps / 2));
    ClusterManager fleet(cfg, {masstree}, std::move(loads), 42);
    for (std::size_t n = 0; n < nodes; ++n) {
        sim::MachineConfig machine;
        if (n % 2 == 1)
            machine.numCores = 6;
        fleet.addNode(machine, factory);
    }
    return fleet;
}

void
expectIdenticalTraces(const FleetRunResult &a, const FleetRunResult &b)
{
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t t = 0; t < a.trace.size(); ++t) {
        const auto &fa = a.trace[t];
        const auto &fb = b.trace[t];
        // Bit-identical, not approximately equal: the thread count
        // must not leak into any simulated quantity.
        EXPECT_EQ(fa.offeredRps, fb.offeredRps) << "step " << t;
        EXPECT_EQ(fa.fleetP99Ms, fb.fleetP99Ms) << "step " << t;
        EXPECT_EQ(fa.totalPowerW, fb.totalPowerW) << "step " << t;
        ASSERT_EQ(fa.nodes.size(), fb.nodes.size());
        for (std::size_t n = 0; n < fa.nodes.size(); ++n) {
            EXPECT_EQ(fa.nodes[n].socketPowerW,
                      fb.nodes[n].socketPowerW)
                << "step " << t << " node " << n;
            ASSERT_EQ(fa.nodes[n].services.size(),
                      fb.nodes[n].services.size());
            for (std::size_t s = 0; s < fa.nodes[n].services.size();
                 ++s) {
                EXPECT_EQ(fa.nodes[n].services[s].p99Ms,
                          fb.nodes[n].services[s].p99Ms)
                    << "step " << t << " node " << n;
            }
        }
    }
    EXPECT_EQ(a.metrics.windowP99Ms, b.metrics.windowP99Ms);
    EXPECT_EQ(a.metrics.meanPowerW, b.metrics.meanPowerW);
}

} // namespace

TEST(Router, PolicyNamesRoundTrip)
{
    for (const char *name : {"static", "wrr", "p2c-latency"})
        EXPECT_STREQ(routingPolicyName(routingPolicyByName(name)), name);
    EXPECT_THROW(routingPolicyByName("round-robin"), FatalError);
}

TEST(Router, StaticSplitsEqually)
{
    Router router({RoutingPolicy::Static, 64}, 1);
    const auto out =
        router.route({900.0, 300.0}, {1.0, 2.0, 1.0}, {});
    ASSERT_EQ(out.size(), 3u);
    for (const auto &node : out) {
        EXPECT_DOUBLE_EQ(node[0], 300.0); // weights ignored by design
        EXPECT_DOUBLE_EQ(node[1], 100.0);
    }
}

TEST(Router, WrrIsCapacityProportionalAndConserving)
{
    Router router({RoutingPolicy::WeightedRoundRobin, 300}, 1);
    const auto out = router.route({600.0}, {2.0, 1.0}, {});
    // 300 quanta at 2:1 weights split exactly 200:100.
    EXPECT_NEAR(out[0][0], 400.0, 1e-9);
    EXPECT_NEAR(out[1][0], 200.0, 1e-9);
    EXPECT_NEAR(out[0][0] + out[1][0], 600.0, 1e-9);
}

TEST(Router, P2cConservesLoadAndAvoidsTardyNodes)
{
    Router router({RoutingPolicy::PowerOfTwoLatency, 256}, 7);
    RouterFeedback feedback;
    // Node 2 blew its tail-latency target by 3x last interval.
    feedback.p99MsByNode = {{10.0}, {10.0}, {90.0}};
    feedback.qosTargetsMs = {30.0};
    const auto out =
        router.route({900.0}, {1.0, 1.0, 1.0}, feedback);
    EXPECT_NEAR(out[0][0] + out[1][0] + out[2][0], 900.0, 1e-9);
    EXPECT_LT(out[2][0], out[0][0]);
    EXPECT_LT(out[2][0], out[1][0]);
}

TEST(Router, Validation)
{
    Router router({RoutingPolicy::Static, 64}, 1);
    EXPECT_THROW(router.route({100.0}, {}, {}), FatalError);
    EXPECT_THROW(router.route({100.0}, {1.0, 0.0}, {}), FatalError);
    EXPECT_THROW(router.route({-1.0}, {1.0}, {}), FatalError);
    EXPECT_THROW(Router({RoutingPolicy::Static, 0}, 1), FatalError);
}

TEST(ClusterManager, ParallelSteppingIsBitIdenticalStaticNodes)
{
    auto serial = makeFleet(RoutingPolicy::PowerOfTwoLatency, 1, 3,
                            staticNodes(), 30);
    auto threaded = makeFleet(RoutingPolicy::PowerOfTwoLatency, 4, 3,
                              staticNodes(), 30);
    expectIdenticalTraces(serial.run(30, 10), threaded.run(30, 10));
}

TEST(ClusterManager, ParallelSteppingIsBitIdenticalTwigNodes)
{
    // Twig nodes exercise per-node learner RNG and training inside
    // the worker threads; results must still match the serial run.
    auto serial = makeFleet(RoutingPolicy::WeightedRoundRobin, 1, 2,
                            twigNodes(20), 20);
    auto threaded = makeFleet(RoutingPolicy::WeightedRoundRobin, 2, 2,
                              twigNodes(20), 20);
    expectIdenticalTraces(serial.run(20, 5), threaded.run(20, 5));
}

TEST(ClusterManager, MetricsCoverEveryService)
{
    auto fleet =
        makeFleet(RoutingPolicy::Static, 1, 2, staticNodes(), 20);
    const auto result = fleet.run(20, 8);
    ASSERT_EQ(result.metrics.serviceNames.size(), 1u);
    EXPECT_EQ(result.metrics.serviceNames[0], "masstree");
    EXPECT_GT(result.metrics.windowP99Ms[0], 0.0);
    EXPECT_GE(result.metrics.qosGuaranteePct[0], 0.0);
    EXPECT_LE(result.metrics.qosGuaranteePct[0], 100.0);
    EXPECT_GT(result.metrics.meanPowerW, 0.0);
    EXPECT_EQ(result.metrics.windowSteps, 8u);
    EXPECT_EQ(result.trace.size(), 20u);
}

TEST(ClusterManager, WarmStartRestoresDonorPolicy)
{
    const std::string path = tmpPath("cluster_donor.ckpt");
    auto donor_fleet = makeFleet(RoutingPolicy::Static, 1, 1,
                                 twigNodes(15), 15);
    donor_fleet.run(15, 5);
    auto *donor = dynamic_cast<core::TwigManager *>(
        &donor_fleet.node(0).manager());
    ASSERT_NE(donor, nullptr);
    donor->saveCheckpoint(path);

    const auto masstree = services::masstree();
    ClusterConfig cfg;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    ClusterManager fleet(cfg, {masstree}, std::move(loads), 99);
    fleet.addNode(sim::MachineConfig{}, twigNodes(15), path);

    auto *warm = dynamic_cast<core::TwigManager *>(
        &fleet.node(0).manager());
    ASSERT_NE(warm, nullptr);
    const std::vector<float> state(
        warm->learner().config().net.numAgents *
            warm->learner().config().net.stateDimPerAgent,
        0.3f);
    EXPECT_EQ(donor->learner().greedyActions(state),
              warm->learner().greedyActions(state));
}

TEST(ClusterManager, WarmStartRejectsNonTwigManagers)
{
    const auto masstree = services::masstree();
    ClusterConfig cfg;
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    ClusterManager fleet(cfg, {masstree}, std::move(loads), 1);
    EXPECT_THROW(fleet.addNode(sim::MachineConfig{}, staticNodes(),
                               tmpPath("whatever.ckpt")),
                 FatalError);
}

TEST(ClusterManager, Validation)
{
    const auto masstree = services::masstree();
    ClusterConfig cfg;

    // One load generator per service, no more, no less.
    std::vector<std::unique_ptr<sim::LoadGenerator>> none;
    EXPECT_THROW(ClusterManager(cfg, {masstree}, std::move(none), 1),
                 FatalError);
    std::vector<std::unique_ptr<sim::LoadGenerator>> loads;
    loads.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    EXPECT_THROW(ClusterManager(cfg, {}, std::move(loads), 1),
                 FatalError);

    std::vector<std::unique_ptr<sim::LoadGenerator>> one;
    one.push_back(
        std::make_unique<sim::FixedLoad>(masstree.maxLoadRps, 0.4));
    ClusterManager fleet(cfg, {masstree}, std::move(one), 1);
    EXPECT_THROW(fleet.step(), FatalError); // no nodes yet
    fleet.addNode(sim::MachineConfig{}, staticNodes());
    EXPECT_THROW(fleet.run(0, 1), FatalError);
    EXPECT_THROW(fleet.run(10, 11), FatalError);
    EXPECT_THROW(fleet.node(5), FatalError);
}
