/** @file Unit tests for the ground-truth power model and RAPL. */

#include <gtest/gtest.h>

#include "sim/power.hh"

using namespace twig::sim;

TEST(Power, DisabledCoreBurnsNothing)
{
    PowerModel pm{MachineConfig{}};
    EXPECT_DOUBLE_EQ(pm.corePower({false, 2.0, 1.0}), 0.0);
}

TEST(Power, IdleCoreBurnsOnlyLeakage)
{
    MachineConfig m;
    PowerModel pm(m);
    const double leak_min = pm.corePower({true, m.dvfs.minGhz, 0.0});
    EXPECT_DOUBLE_EQ(leak_min, m.coreLeakBaseW);
}

TEST(Power, MonotoneInFrequency)
{
    PowerModel pm{MachineConfig{}};
    double prev = 0.0;
    for (double f : {1.2, 1.5, 1.8, 2.0}) {
        const double p = pm.corePower({true, f, 0.7});
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(Power, MonotoneInUtilization)
{
    PowerModel pm{MachineConfig{}};
    EXPECT_LT(pm.corePower({true, 2.0, 0.2}),
              pm.corePower({true, 2.0, 0.9}));
}

TEST(Power, UtilizationClamped)
{
    PowerModel pm{MachineConfig{}};
    EXPECT_DOUBLE_EQ(pm.corePower({true, 2.0, 1.5}),
                     pm.corePower({true, 2.0, 1.0}));
    EXPECT_DOUBLE_EQ(pm.corePower({true, 2.0, -1.0}),
                     pm.corePower({true, 2.0, 0.0}));
}

TEST(Power, VoltageScaledDynamicTerm)
{
    // P_dyn = coeff * (v0 + v1 f)^2 * f * util; with the defaults
    // (v0 = 0.6, v1 = 0.2) the 1.0 -> 2.0 GHz ratio is
    // (1.0^2 * 2.0) / (0.8^2 * 1.0) = 3.125.
    MachineConfig m;
    PowerModel pm(m);
    const double dyn_low = pm.corePower({true, 1.0, 1.0}) -
        pm.corePower({true, 1.0, 0.0});
    const double dyn_high = pm.corePower({true, 2.0, 1.0}) -
        pm.corePower({true, 2.0, 0.0});
    EXPECT_NEAR(dyn_high / dyn_low, 3.125, 1e-9);
}

TEST(Power, SocketPowerIncludesUncore)
{
    MachineConfig m;
    PowerModel pm(m);
    EXPECT_DOUBLE_EQ(pm.socketPower({}), m.uncorePowerW);
}

TEST(Power, IdleBelowMax)
{
    MachineConfig m;
    PowerModel pm(m);
    EXPECT_LT(pm.idlePower(), pm.maxPower());
    // TDP-scale sanity: an 18-core Broadwell socket flat out burns on
    // the order of 100-150 W.
    EXPECT_GT(pm.maxPower(), 80.0);
    EXPECT_LT(pm.maxPower(), 200.0);
    EXPECT_GT(pm.idlePower(), 20.0);
    EXPECT_LT(pm.idlePower(), 50.0);
}

TEST(Rapl, IntegratesEnergy)
{
    MachineConfig m;
    Rapl rapl(m);
    std::vector<CorePowerState> cores(
        m.numCores, CorePowerState{true, 2.0, 1.0});
    rapl.integrate(cores, 2.0);
    const double p = rapl.lastPowerW();
    EXPECT_NEAR(rapl.energyJoules(), 2.0 * p, 1e-9);
    rapl.integrate(cores, 1.0);
    EXPECT_NEAR(rapl.energyJoules(), 3.0 * p, 1e-9);
}

TEST(Rapl, LastPowerTracksCurrentWindow)
{
    MachineConfig m;
    Rapl rapl(m);
    std::vector<CorePowerState> busy(
        m.numCores, CorePowerState{true, 2.0, 1.0});
    std::vector<CorePowerState> idle(
        m.numCores, CorePowerState{true, m.dvfs.minGhz, 0.0});
    rapl.integrate(busy, 1.0);
    const double p_busy = rapl.lastPowerW();
    rapl.integrate(idle, 1.0);
    EXPECT_LT(rapl.lastPowerW(), p_busy);
}

TEST(Dvfs, LadderProperties)
{
    DvfsLadder ladder;
    EXPECT_EQ(ladder.numStates(), 9u);
    EXPECT_DOUBLE_EQ(ladder.freq(0), 1.2);
    EXPECT_DOUBLE_EQ(ladder.freq(8), 2.0);
    EXPECT_NEAR(ladder.freq(4), 1.6, 1e-12);
    EXPECT_EQ(ladder.maxIndex(), 8u);
    EXPECT_THROW(ladder.freq(9), twig::common::FatalError);
}

TEST(CoreAssignment, EffectiveCores)
{
    CoreAssignment a;
    a.dedicatedCores = {0, 1, 2};
    a.sharedCores = {3, 4};
    a.shareCount = 2;
    // Default (sentinel): the whole pool is usable.
    EXPECT_DOUBLE_EQ(a.effectiveCores(), 5.0);
    EXPECT_EQ(a.totalCoreIds(), 5u);
    // With the server's work-conserving split applied:
    a.sharedUsableCores = 1.2;
    EXPECT_DOUBLE_EQ(a.effectiveCores(), 4.2);
    EXPECT_DOUBLE_EQ(a.usableSharedCores(), 1.2);
    // Usable capacity is clamped to the pool size.
    a.sharedUsableCores = 9.0;
    EXPECT_DOUBLE_EQ(a.effectiveCores(), 5.0);
}
